// Unit tests for hw/ and model/: kernel cost models (incl. the Sputnik /
// cuSPARSE / dense crossover), memory model, model builders, and the
// per-layer dynamic cost semantics.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "hw/kernel_cost.hpp"
#include "hw/memory_model.hpp"
#include "model/layer.hpp"
#include "model/layer_cost.hpp"

namespace dynmo {
namespace {

using hw::KernelCostModel;
using hw::SpmmBackend;

TEST(KernelCost, GemmScalesWithFlops) {
  KernelCostModel k;
  EXPECT_GT(k.gemm(4096, 4096, 4096), k.gemm(1024, 1024, 1024));
  EXPECT_GT(k.gemm(1, 1, 1), 0.0);  // launch overhead floor
}

TEST(KernelCost, AttentionQuadraticInSequence) {
  KernelCostModel k;
  const double s1 = k.flash_attention(2, 32, 1024, 32);
  const double s2 = k.flash_attention(2, 32, 4096, 32);
  EXPECT_GT(s2, 8.0 * s1);  // 16x flops, minus launch overhead
}

TEST(KernelCost, AttentionDensityScales) {
  KernelCostModel k;
  const double dense = k.flash_attention(2, 32, 2048, 32, 0.5);
  const double sparse = k.flash_attention(2, 32, 2048, 32, 0.05);
  EXPECT_LT(sparse, dense);
}

TEST(KernelCost, SputnikCrossoverNear75PercentSparsity) {
  KernelCostModel k;
  // Below the crossover density, Sputnik beats dense; above, dense wins.
  const std::size_t m = 4096, n = 4096, kk = 1024;
  const double at_10 = k.spmm(m, n, kk, 0.10, SpmmBackend::Sputnik);
  const double at_40 = k.spmm(m, n, kk, 0.40, SpmmBackend::Sputnik);
  const double dense = k.spmm(m, n, kk, 0.10, SpmmBackend::DenseCublas);
  EXPECT_LT(at_10, dense);
  EXPECT_GT(at_40, dense);
  EXPECT_EQ(k.best_spmm_backend(m, n, kk, 0.10), SpmmBackend::Sputnik);
  EXPECT_EQ(k.best_spmm_backend(m, n, kk, 0.60), SpmmBackend::DenseCublas);
}

TEST(KernelCost, CusparseOnlyWinsAtExtremeSparsity) {
  KernelCostModel k;
  // cuSPARSE is tuned for HPC-style >99% sparsity.
  EXPECT_GT(k.spmm(4096, 4096, 1024, 0.10, SpmmBackend::Cusparse),
            k.spmm(4096, 4096, 1024, 0.10, SpmmBackend::Sputnik));
  EXPECT_EQ(k.best_spmm_backend(4096, 4096, 1024, 0.001),
            SpmmBackend::Sputnik);  // Sputnik still >= cuSPARSE for DL shapes
}

TEST(KernelCost, DenseBackendIgnoresSparsity) {
  KernelCostModel k;
  EXPECT_DOUBLE_EQ(k.spmm(128, 128, 128, 0.1, SpmmBackend::DenseCublas),
                   k.spmm(128, 128, 128, 0.9, SpmmBackend::DenseCublas));
}

TEST(MemoryModel, FrozenLayersKeepOnlyWeights) {
  hw::MemoryModel m;
  const double active = m.layer_state_bytes(1000, false);
  const double frozen = m.layer_state_bytes(1000, true);
  EXPECT_DOUBLE_EQ(active, 16000.0);
  EXPECT_DOUBLE_EQ(frozen, 2000.0);
}

TEST(MemoryModel, PrunedLayersCarryIndexOverhead) {
  hw::MemoryModel m;
  const double dense = m.layer_state_bytes(1000, false, 1.0);
  const double half = m.layer_state_bytes(1000, false, 0.5);
  EXPECT_LT(half, dense);
  EXPECT_GT(half, 0.5 * dense);  // CSR index overhead on top of values
}

TEST(ModelBuilder, GptLayerCounts) {
  const auto m = model::make_gpt({.num_blocks = 24});
  EXPECT_EQ(m.num_layers(), 26u);  // embedding + 24 blocks + head
  EXPECT_EQ(m.num_blocks(), 24u);
  const auto bare = model::make_gpt({.num_blocks = 24,
                                     .include_embedding = false,
                                     .include_lm_head = false});
  EXPECT_EQ(bare.num_layers(), 24u);
}

TEST(ModelBuilder, GptParamCountPlausible) {
  // GPT-2-medium-like: 24 blocks, hidden 1024 → ~300M in blocks.
  const auto m = model::make_gpt({.num_blocks = 24,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const double params = static_cast<double>(m.total_params());
  EXPECT_GT(params, 250e6);
  EXPECT_LT(params, 350e6);
}

TEST(ModelBuilder, RejectsBadConfig) {
  model::GptConfig no_blocks;
  no_blocks.num_blocks = 0;
  EXPECT_THROW((void)model::make_gpt(no_blocks), Error);
  model::GptConfig bad_heads;
  bad_heads.hidden = 100;
  bad_heads.heads = 32;
  EXPECT_THROW((void)model::make_gpt(bad_heads), Error);
}

TEST(ModelBuilder, MoePresets) {
  const auto mixtral =
      model::make_moe(model::mixtral_8x7b_config(), "mixtral");
  EXPECT_EQ(mixtral.num_blocks(), 32u);
  // 8-expert Mixtral: tens of billions of parameters.
  EXPECT_GT(static_cast<double>(mixtral.total_params()), 20e9);
  const auto llama = model::make_moe(model::llama_moe_3_5b_config(), "lm");
  EXPECT_LT(llama.total_params(), mixtral.total_params());
}

class LayerCostSemantics : public ::testing::Test {
 protected:
  model::ModelDesc m = model::make_gpt({.num_blocks = 4,
                                        .include_embedding = false,
                                        .include_lm_head = false});
  model::LayerCostModel costs{};
};

TEST_F(LayerCostSemantics, BackwardIsTwiceForward) {
  model::LayerState s;
  const auto t = costs.layer_times(m.layers[0], s, 2);
  EXPECT_NEAR(t.backward_s(), 2.0 * t.forward_s, 1e-12);
  EXPECT_GT(t.forward_s, 0.0);
}

TEST_F(LayerCostSemantics, FrozenSkipsBackwardOnly) {
  model::LayerState s;
  s.frozen = true;
  const auto t = costs.layer_times(m.layers[0], s, 2);
  EXPECT_GT(t.forward_s, 0.0);
  EXPECT_EQ(t.backward_s(), 0.0);
}

TEST_F(LayerCostSemantics, TokenFractionShrinksCost) {
  model::LayerState full, half;
  half.token_fraction = 0.5;
  const auto tf = costs.layer_times(m.layers[0], full, 2);
  const auto th = costs.layer_times(m.layers[0], half, 2);
  EXPECT_LT(th.forward_s, tf.forward_s);
  EXPECT_GT(th.forward_s, 0.25 * tf.forward_s);
}

TEST_F(LayerCostSemantics, ComputeScaleIsWholeLayer) {
  model::LayerState s;
  s.compute_scale = 0.25;
  const auto t1 = costs.layer_times(m.layers[0], model::LayerState{}, 2);
  const auto t2 = costs.layer_times(m.layers[0], s, 2);
  EXPECT_NEAR(t2.forward_s, 0.25 * t1.forward_s, 1e-12);
}

TEST_F(LayerCostSemantics, SparsePruningCheaperOnSputnik) {
  model::LayerState dense, pruned;
  pruned.weight_density = 0.05;
  pruned.spmm_backend = hw::SpmmBackend::Sputnik;
  const auto td = costs.layer_times(m.layers[0], dense, 2);
  const auto tp = costs.layer_times(m.layers[0], pruned, 2);
  EXPECT_LT(tp.forward_s, td.forward_s);
}

TEST_F(LayerCostSemantics, MemoryScalesWithResidency) {
  model::LayerState s;
  const double m1 = costs.layer_memory_bytes(m.layers[0], s, 2, 1);
  const double m4 = costs.layer_memory_bytes(m.layers[0], s, 2, 4);
  EXPECT_GT(m4, m1);
  EXPECT_LT(m4, 4.0 * m1);  // parameter state does not replicate
}

TEST_F(LayerCostSemantics, ActivationMessageScalesWithTokens) {
  model::LayerState s;
  const double full = costs.activation_message_bytes(m.layers[0], s, 2);
  s.token_fraction = 0.25;
  const double quarter = costs.activation_message_bytes(m.layers[0], s, 2);
  EXPECT_NEAR(quarter, 0.25 * full, 1e-9);
}

TEST(MoeLayerCost, LoadFactorScalesFfn) {
  const auto m = model::make_moe(model::llama_moe_3_5b_config(), "m");
  model::LayerCostModel costs{};
  model::LayerState balanced, skewed;
  skewed.moe_load = 1.5;
  const auto& block = m.layers[1];
  ASSERT_EQ(block.kind, model::LayerKind::MoeTransformerBlock);
  EXPECT_GT(costs.layer_times(block, skewed, 2).forward_s,
            costs.layer_times(block, balanced, 2).forward_s);
}

}  // namespace
}  // namespace dynmo
