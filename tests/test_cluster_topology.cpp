// Cluster topology: construction, presets, shortest-path effective
// bandwidth, the CostModel adapter, and topology-aware placement.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster/placement.hpp"
#include "cluster/topology.hpp"
#include "core/error.hpp"
#include "core/units.hpp"

namespace dynmo::cluster {
namespace {

TEST(Topology, DgxH100PresetShape) {
  const auto topo = Topology::make_dgx_h100(2);
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.num_ranks(), 16);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(7), 0);
  EXPECT_EQ(topo.node_of(8), 1);
  EXPECT_EQ(topo.local_rank(11), 3);
  EXPECT_EQ(topo.first_rank(1), 8);
  EXPECT_EQ(topo.node_size(1), 8);
  EXPECT_TRUE(topo.same_node(0, 7));
  EXPECT_FALSE(topo.same_node(7, 8));
  EXPECT_EQ(topo.gpu(3).name, "H100-SXM5-80GB");
}

TEST(Topology, IntraNodeBandwidthIsNvLink) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto nv = default_link(LinkType::NvLink);
  EXPECT_DOUBLE_EQ(topo.effective_bandwidth(0, 7), nv.bandwidth_bytes_s);
  const auto path = topo.best_path(0, 7);
  ASSERT_EQ(path.hops.size(), 2u);  // direct clique edge
  EXPECT_DOUBLE_EQ(path.latency_s, nv.latency_s);
}

TEST(Topology, SameRailCrossNodeIsOneInfiniBandHop) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto ib = default_link(LinkType::InfiniBand);
  // Rank 3 and rank 11 share rail 3.
  const auto path = topo.best_path(3, 11);
  ASSERT_EQ(path.hops.size(), 2u);
  EXPECT_DOUBLE_EQ(path.bandwidth_bytes_s, ib.bandwidth_bytes_s);
}

TEST(Topology, OffRailCrossNodeHopsOverTheClique) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto ib = default_link(LinkType::InfiniBand);
  const auto nv = default_link(LinkType::NvLink);
  // Rank 0 → rank 13 (rail 5): one NVLink hop plus one rail hop.
  const auto path = topo.best_path(0, 13);
  ASSERT_EQ(path.hops.size(), 3u);
  EXPECT_DOUBLE_EQ(path.bandwidth_bytes_s, ib.bandwidth_bytes_s);
  EXPECT_DOUBLE_EQ(path.latency_s, ib.latency_s + nv.latency_s);
  // It is still strictly slower than the same-rail route.
  EXPECT_GT(topo.p2p_time(0, 13, 1 << 20), topo.p2p_time(3, 11, 1 << 20));
}

TEST(Topology, SelfPathIsFree) {
  const auto topo = Topology::make_dgx_h100(1);
  EXPECT_EQ(topo.p2p_time(2, 2, 1 << 30), 0.0);
  EXPECT_TRUE(std::isinf(topo.effective_bandwidth(2, 2)));
}

TEST(Topology, CustomGraphRoutesThroughBridge) {
  // Two 2-GPU nodes joined by a single Ethernet uplink on rank 0 ↔ 2:
  // rank 1 → rank 3 must cross three hops (clique, uplink, clique).
  Topology topo;
  NodeDesc node;
  node.gpus = {hw::GpuSpec::a100_sxm4(), hw::GpuSpec::a100_sxm4()};
  topo.add_node(node);
  topo.add_node(node);
  topo.add_link(0, 2, default_link(LinkType::Ethernet));
  const auto path = topo.best_path(1, 3);
  ASSERT_EQ(path.hops.size(), 4u);
  EXPECT_DOUBLE_EQ(path.bandwidth_bytes_s,
                   default_link(LinkType::Ethernet).bandwidth_bytes_s);
}

TEST(Topology, DisconnectedRanksAreReported) {
  Topology topo;
  NodeDesc node;
  node.gpus = {hw::GpuSpec::a100_sxm4()};
  topo.add_node(node);
  topo.add_node(node);
  EXPECT_FALSE(topo.best_path(0, 1).reachable());
  EXPECT_EQ(topo.effective_bandwidth(0, 1), 0.0);
  EXPECT_THROW(topo.p2p_time(0, 1, 1024), Error);
  EXPECT_THROW(topo.make_cost_model(), Error);
}

TEST(Topology, HeteroRailsSpanTheSmallestNode) {
  NodeDesc big;
  big.gpus.assign(4, hw::GpuSpec::h100_sxm5());
  NodeDesc small;
  small.gpus.assign(2, hw::GpuSpec::a100_sxm4());
  const auto topo = Topology::make_hetero(
      {big, small}, default_link(LinkType::InfiniBand));
  EXPECT_EQ(topo.num_ranks(), 6);
  // Rails exist on local ranks 0 and 1 only; local rank 3 of the big node
  // reaches the small node through its clique.
  EXPECT_EQ(topo.best_path(0, 4).hops.size(), 2u);
  EXPECT_EQ(topo.best_path(3, 5).hops.size(), 3u);
}

TEST(Topology, CostModelAdapterMatchesTopologyPricing) {
  const auto topo = Topology::make_dgx_a100(2);
  const auto net = topo.make_cost_model();
  ASSERT_TRUE(net.has_link_resolver());
  for (const auto& [a, b] : {std::pair{0, 5}, {2, 9}, {0, 8}, {7, 15}}) {
    EXPECT_NEAR(net.p2p_time(a, b, 64 << 20),
                topo.p2p_time(a, b, 64 << 20), 1e-12)
        << "pair (" << a << "," << b << ")";
  }
  // The snapshot covers exactly the topology's ranks.
  EXPECT_THROW(net.p2p_time(0, 16, 1024), Error);
}

TEST(Topology, CostModelWithoutResolverKeepsTierRule) {
  comm::CostModel net{};
  EXPECT_FALSE(net.has_link_resolver());
  const auto same = net.p2p_time(0, 1, 1 << 20);
  const auto cross = net.p2p_time(0, 4, 1 << 20);
  EXPECT_LT(same, cross);
}

TEST(Placement, LinearBeatsRoundRobinOnHierarchy) {
  const auto topo = Topology::make_dgx_h100(4);
  const auto linear = place_linear(topo, 16);
  const auto rr = place_round_robin(topo, 16);
  // Round-robin pays an inter-node link on every boundary.
  EXPECT_GT(rr.boundary_time_s, 2.0 * linear.boundary_time_s);
  EXPECT_DOUBLE_EQ(
      placement_cost_s(topo, linear.stage_to_rank),
      linear.boundary_time_s);
}

TEST(Placement, TopologyAwareNoWorseThanLinearOnHomogeneousPods) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto aware = place_topology_aware(topo, 12);
  const auto linear = place_linear(topo, 12);
  // Aware can beat linear by crossing nodes on a shared rail (one IB hop)
  // where the rank-order fill pays NVLink + IB.
  EXPECT_LE(aware.boundary_time_s, linear.boundary_time_s);
  // Stages on one node stay contiguous.
  for (std::size_t s = 0; s + 1 < aware.stage_to_rank.size(); ++s) {
    EXPECT_LE(topo.node_of(aware.stage_to_rank[s]),
              topo.node_of(aware.stage_to_rank[s + 1]));
  }
}

TEST(Placement, TopologyAwareSeedsOnTheFastestNode) {
  NodeDesc slow;
  slow.gpus.assign(8, hw::GpuSpec::a100_sxm4());
  NodeDesc fast;
  fast.gpus.assign(8, hw::GpuSpec::h100_sxm5());
  const auto topo = Topology::make_hetero(
      {slow, fast}, default_link(LinkType::InfiniBand));
  const auto aware = place_topology_aware(topo, 8);
  // All eight stages fit on the H100 node (ranks 8..15): no boundary
  // leaves the clique.
  for (const int r : aware.stage_to_rank) EXPECT_EQ(topo.node_of(r), 1);
  EXPECT_DOUBLE_EQ(
      aware.boundary_time_s,
      7.0 * topo.p2p_time(8, 9, kDefaultActivationBytes));
}

TEST(Placement, RejectsMoreStagesThanRanks) {
  const auto topo = Topology::make_dgx_h100(1);
  EXPECT_THROW(place_linear(topo, 9), Error);
  EXPECT_THROW(place_topology_aware(topo, 9), Error);
}

TEST(GridPlacement, DpInnerPacksAStagesPeersIntoOneNode) {
  // 4 nodes x 4 GPUs, 4x4 grid: DP width equals the node size, so every
  // stage's four peers land on a single node — the orientation that keeps
  // the gradient allreduce on NVLink.
  const auto topo = Topology::make_homogeneous(
      4, 4, hw::GpuSpec::h100_sxm5(), default_link(LinkType::NvLink),
      default_link(LinkType::InfiniBand));
  const auto g = place_grid(topo, 4, 4, GridOrientation::DpInner);
  ASSERT_EQ(static_cast<int>(g.grid_to_rank.size()), 16);
  for (int s = 0; s < 4; ++s) {
    const int node = topo.node_of(g.grid_to_rank[static_cast<std::size_t>(s)]);
    for (int d = 1; d < 4; ++d) {
      EXPECT_EQ(topo.node_of(
                    g.grid_to_rank[static_cast<std::size_t>(d * 4 + s)]),
                node)
          << "stage " << s << " replica " << d;
    }
  }
}

TEST(GridPlacement, PpInnerPacksAReplicasPipelineIntoOneNode) {
  const auto topo = Topology::make_homogeneous(
      4, 4, hw::GpuSpec::h100_sxm5(), default_link(LinkType::NvLink),
      default_link(LinkType::InfiniBand));
  const auto g = place_grid(topo, 4, 4, GridOrientation::PpInner);
  for (int d = 0; d < 4; ++d) {
    const int node = topo.node_of(g.grid_to_rank[static_cast<std::size_t>(d * 4)]);
    for (int s = 1; s < 4; ++s) {
      EXPECT_EQ(topo.node_of(
                    g.grid_to_rank[static_cast<std::size_t>(d * 4 + s)]),
                node)
          << "replica " << d << " stage " << s;
    }
  }
  // Activations never leave a node under PpInner, so its summed boundary
  // time must undercut DpInner's (whose boundaries all cross the fabric).
  const auto dp_inner = place_grid(topo, 4, 4, GridOrientation::DpInner);
  EXPECT_LT(g.boundary_time_s, dp_inner.boundary_time_s);
}

TEST(GridPlacement, CoversDistinctRanksAndRejectsOversizedGrids) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto g = place_grid(topo, 2, 8, GridOrientation::PpInner);
  std::vector<bool> seen(16, false);
  for (int r : g.grid_to_rank) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(r)]);
    seen[static_cast<std::size_t>(r)] = true;
  }
  EXPECT_THROW(place_grid(topo, 3, 8, GridOrientation::DpInner), Error);
  EXPECT_THROW(place_grid(topo, 0, 8, GridOrientation::DpInner), Error);
}

}  // namespace
}  // namespace dynmo::cluster
