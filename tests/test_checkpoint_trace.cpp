// Tests for checkpointing (incl. the §3.4.2 checkpoint-coordinated repack
// restart path) and timeline tracing.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "pipeline/trace.hpp"
#include "runtime/checkpoint.hpp"

namespace dynmo {
namespace {

runtime::Checkpoint sample_checkpoint() {
  runtime::Checkpoint ckpt;
  ckpt.iteration = 4242;
  ckpt.stage_map = pipeline::StageMap::from_boundaries({0, 3, 5, 8});
  ckpt.layer_states.resize(8);
  ckpt.layer_states[1].frozen = true;
  ckpt.layer_states[2].weight_density = 0.1;
  ckpt.layer_states[2].spmm_backend = hw::SpmmBackend::Sputnik;
  ckpt.layer_states[5].token_fraction = 0.25;
  Rng rng(9);
  ckpt.weights.emplace(0, tensor::Tensor::random(4, 4, rng));
  ckpt.weights.emplace(7, tensor::Tensor::random(6, 2, rng));
  return ckpt;
}

TEST(Checkpoint, SerializeRoundTrip) {
  const auto ckpt = sample_checkpoint();
  const auto bytes = ckpt.serialize();
  const auto back = runtime::Checkpoint::deserialize(bytes);
  EXPECT_EQ(back, ckpt);
  EXPECT_EQ(back.iteration, 4242);
  EXPECT_TRUE(back.layer_states[1].frozen);
  EXPECT_EQ(back.weights.at(7).cols(), 2u);
}

TEST(Checkpoint, DetectsCorruption) {
  auto bytes = sample_checkpoint().serialize();
  bytes[bytes.size() / 2] ^= std::byte{0x01};
  EXPECT_THROW((void)runtime::Checkpoint::deserialize(bytes), Error);
}

TEST(Checkpoint, RejectsTruncation) {
  auto bytes = sample_checkpoint().serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)runtime::Checkpoint::deserialize(bytes), Error);
}

TEST(Checkpoint, RejectsForeignMagic) {
  std::vector<std::byte> junk(64, std::byte{0x5a});
  EXPECT_THROW((void)runtime::Checkpoint::deserialize(junk), Error);
}

/// One [u16 tag][u64 size][payload] frame of the v2 stream
/// (docs/RUNTIME.md byte-layout table).
struct FieldFrame {
  std::uint16_t tag = 0;
  std::size_t frame_off = 0;    ///< where the tag starts
  std::size_t payload_off = 0;  ///< where the payload starts
  std::size_t size = 0;
};

std::vector<FieldFrame> walk_frames(const std::vector<std::byte>& bytes) {
  std::vector<FieldFrame> out;
  const std::size_t body = bytes.size() - sizeof(std::uint64_t);
  std::size_t pos = 2 * sizeof(std::uint32_t);  // magic + version
  while (pos < body) {
    FieldFrame f;
    f.frame_off = pos;
    std::memcpy(&f.tag, bytes.data() + pos, sizeof(f.tag));
    pos += sizeof(f.tag);
    std::uint64_t sz = 0;
    std::memcpy(&sz, bytes.data() + pos, sizeof(sz));
    pos += sizeof(sz);
    f.payload_off = pos;
    f.size = static_cast<std::size_t>(sz);
    pos += f.size;
    out.push_back(f);
  }
  return out;
}

TEST(Checkpoint, StreamCarriesEveryTaggedField) {
  const auto bytes = sample_checkpoint().serialize();
  const auto frames = walk_frames(bytes);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].tag,
            static_cast<std::uint16_t>(runtime::CheckpointField::Iteration));
  EXPECT_EQ(frames[1].tag,
            static_cast<std::uint16_t>(runtime::CheckpointField::StageMap));
  EXPECT_EQ(frames[2].tag, static_cast<std::uint16_t>(
                               runtime::CheckpointField::LayerStates));
  EXPECT_EQ(frames[3].tag,
            static_cast<std::uint16_t>(runtime::CheckpointField::Weights));
  // Frames tile the body exactly.
  EXPECT_EQ(frames.back().payload_off + frames.back().size,
            bytes.size() - sizeof(std::uint64_t));
}

TEST(Checkpoint, CorruptionAtEveryFieldBoundaryIsCaught) {
  const auto clean = sample_checkpoint().serialize();
  const auto frames = walk_frames(clean);
  ASSERT_EQ(frames.size(), 4u);
  for (const auto& f : frames) {
    // Flip a byte in the tag, in the size, and in the payload of every
    // field — all must throw (field/offset error or checksum mismatch),
    // never parse to a wrong checkpoint or crash.
    for (const std::size_t off :
         {f.frame_off, f.frame_off + 2, f.payload_off}) {
      auto bytes = clean;
      bytes[off] ^= std::byte{0xff};
      EXPECT_THROW((void)runtime::Checkpoint::deserialize(bytes), Error)
          << "field tag " << f.tag << " byte " << off;
    }
  }
}

TEST(Checkpoint, HugeCorruptedCountsThrowErrorNotBadAlloc) {
  // Structure is validated before the checksum, so corrupted counts and
  // shapes reach the parser: they must fail the payload bound as a
  // dynmo::Error — never as std::length_error or a multi-PB allocation.
  const auto clean = sample_checkpoint().serialize();
  const auto frames = walk_frames(clean);
  // Flip the HIGH byte of the layer_states count (payload offset +7)...
  {
    auto bytes = clean;
    bytes[frames[2].payload_off + 7] ^= std::byte{0x40};
    EXPECT_THROW((void)runtime::Checkpoint::deserialize(bytes), Error);
  }
  // ...of the weights count...
  {
    auto bytes = clean;
    bytes[frames[3].payload_off + 7] ^= std::byte{0x40};
    EXPECT_THROW((void)runtime::Checkpoint::deserialize(bytes), Error);
  }
  // ...and of a weight entry's row count (first entry: u64 layer at +8,
  // rows at +16) — the rows*cols product must not wrap past 2^64 into a
  // passing shape check.
  {
    auto bytes = clean;
    bytes[frames[3].payload_off + 16 + 7] ^= std::byte{0x40};
    EXPECT_THROW((void)runtime::Checkpoint::deserialize(bytes), Error);
  }
}

TEST(Checkpoint, TruncationAtEveryFieldBoundaryIsCaught) {
  const auto clean = sample_checkpoint().serialize();
  for (const auto& f : walk_frames(clean)) {
    for (const std::size_t cut :
         {f.frame_off + 1, f.payload_off, f.payload_off + f.size / 2}) {
      auto bytes = clean;
      bytes.resize(cut);
      EXPECT_THROW((void)runtime::Checkpoint::deserialize(bytes), Error)
          << "field tag " << f.tag << " cut at " << cut;
    }
  }
}

TEST(Checkpoint, DeserializeNamesTheFailingFieldAndOffset) {
  // Corrupt the stage_map payload into non-monotone boundaries: the
  // structural parse must fail *inside* that field and say so, rather
  // than surface a generic checksum error.
  const auto clean = sample_checkpoint().serialize();
  const auto frames = walk_frames(clean);
  const auto& sm = frames[1];
  auto bytes = clean;
  // Payload layout: u64 count, then the boundary values; clobber the
  // second boundary (offset 8 + 8) with a huge value.
  const std::uint64_t huge = ~0ull;
  std::memcpy(bytes.data() + sm.payload_off + 16, &huge, sizeof(huge));
  try {
    (void)runtime::Checkpoint::deserialize(bytes);
    FAIL() << "corrupt stage_map deserialized";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stage_map"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
}

TEST(Checkpoint, VersionBumpIsRejectedWithTheVersionNamed) {
  auto bytes = sample_checkpoint().serialize();
  const std::uint32_t future = runtime::Checkpoint::kVersion + 1;
  std::memcpy(bytes.data() + sizeof(std::uint32_t), &future, sizeof(future));
  try {
    (void)runtime::Checkpoint::deserialize(bytes);
    FAIL() << "future version deserialized";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(future)), std::string::npos) << what;
  }
}

TEST(Checkpoint, RoundTripAcrossWorkerCounts) {
  // The elastic lifecycle reshards the same checkpoint onto shrinking and
  // growing worker counts; serialization must be lossless at every one.
  const auto base = sample_checkpoint();
  const std::vector<double> weights(8, 1.0);
  for (const int workers : {1, 2, 3, 5, 8}) {
    const auto resharded =
        runtime::reshard_for_restart(base, workers, weights);
    EXPECT_EQ(resharded.stage_map.num_stages(), workers);
    const auto back =
        runtime::Checkpoint::deserialize(resharded.serialize());
    EXPECT_EQ(back, resharded) << workers << " workers";
  }
}

TEST(Checkpoint, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "dynmo_ckpt_test.bin";
  const auto ckpt = sample_checkpoint();
  ckpt.save(path.string());
  const auto back = runtime::Checkpoint::load(path.string());
  EXPECT_EQ(back, ckpt);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ReshardForRestartRebalances) {
  // §3.4.2: restart onto fewer workers re-partitions for free.
  auto ckpt = sample_checkpoint();
  const std::vector<double> weights = {1, 1, 1, 1, 4, 1, 1, 1};
  const auto resharded = runtime::reshard_for_restart(ckpt, 2, weights);
  EXPECT_EQ(resharded.stage_map.num_stages(), 2);
  EXPECT_EQ(resharded.stage_map.num_layers(), 8u);
  // Dynamic state and weights untouched.
  EXPECT_TRUE(resharded.layer_states[1].frozen);
  EXPECT_EQ(resharded.weights.size(), 2u);
  // The heavy layer 4 must not share a stage with all the others.
  const auto loads = resharded.stage_map.stage_loads(weights);
  EXPECT_LE(*std::max_element(loads.begin(), loads.end()), 7.0);
}

TEST(Trace, EventsCoverAllWork) {
  pipeline::StageCosts costs(3, 4);
  for (int s = 0; s < 3; ++s) costs.set_stage(s, 1.0, 0.5, 0.5);
  const auto [result, trace] =
      pipeline::simulate_traced(pipeline::ScheduleKind::ZbH1, costs);
  EXPECT_EQ(trace.makespan_s, result.makespan_s);
  for (int s = 0; s < 3; ++s) {
    EXPECT_NEAR(trace.stage_busy_s(s),
                result.busy_s[static_cast<std::size_t>(s)], 1e-12);
  }
  // ZB emits F, B and W events.
  bool f = false, b = false, w = false;
  for (const auto& e : trace.events) {
    f |= e.kind == 'F';
    b |= e.kind == 'B';
    w |= e.kind == 'W';
    EXPECT_GE(e.start_s, 0.0);
    EXPECT_LE(e.start_s + e.duration_s, result.makespan_s + 1e-12);
  }
  EXPECT_TRUE(f && b && w);
}

TEST(Trace, EventsNeverOverlapWithinStage) {
  pipeline::StageCosts costs(4, 8);
  Rng rng(3);
  for (int s = 0; s < 4; ++s) {
    for (int mb = 0; mb < 8; ++mb) {
      costs.fwd(s, mb) = rng.uniform(0.1, 1.0);
      costs.bwd_input(s, mb) = rng.uniform(0.1, 1.0);
      costs.bwd_weight(s, mb) = rng.uniform(0.1, 1.0);
    }
  }
  const auto [result, trace] =
      pipeline::simulate_traced(pipeline::ScheduleKind::OneFOneB, costs);
  for (int s = 0; s < 4; ++s) {
    std::vector<std::pair<double, double>> spans;
    for (const auto& e : trace.events) {
      if (e.stage == s) spans.emplace_back(e.start_s, e.duration_s);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first,
                spans[i - 1].first + spans[i - 1].second - 1e-12);
    }
  }
}

TEST(Trace, ChromeJsonWellFormedish) {
  pipeline::StageCosts costs(2, 2);
  costs.set_stage(0, 1.0, 1.0, 0.0);
  costs.set_stage(1, 1.0, 1.0, 0.0);
  const auto [result, trace] =
      pipeline::simulate_traced(pipeline::ScheduleKind::GPipe, costs);
  const auto json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  // File write path.
  const auto path = std::filesystem::temp_directory_path() /
                    "dynmo_trace_test.json";
  trace.write_chrome_json(path.string());
  EXPECT_GT(std::filesystem::file_size(path), 10u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dynmo
