// Integration tests for the simulated-clock training session: the
// end-to-end shapes the paper reports, on small/fast configurations.
#include <gtest/gtest.h>

#include "dynmo/dynmo.hpp"

namespace dynmo {
namespace {

Options fast_options() {
  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.data_parallel = 2;
  opt.session.micro_batch = 2;
  opt.session.num_microbatches = 16;
  opt.session.iterations = 2000;
  opt.session.sim_stride = 50;
  opt.session.rebalance_interval = 50;
  return opt;
}

runtime::SessionResult run(const model::ModelDesc& m, UseCase uc,
                           Options opt, runtime::BalancingMode mode,
                           balance::Algorithm algo = balance::Algorithm::Partition) {
  opt.session.mode = mode;
  opt.session.algorithm = algo;
  Session s(m, uc, opt);
  return s.run();
}

TEST(Session, StaticModelBalancedAlready) {
  const auto m = model::make_gpt({.num_blocks = 16,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const auto r = run(m, UseCase::Static, fast_options(),
                     runtime::BalancingMode::StaticUniform);
  EXPECT_GT(r.tokens_per_sec, 0.0);
  EXPECT_LT(r.avg_idleness, 0.25);  // only inherent pipeline bubbles
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.rebalance_count, 0);
}

class SessionDynamicSweep : public ::testing::TestWithParam<UseCase> {};

TEST_P(SessionDynamicSweep, DynMoBeatsOrMatchesStatic) {
  const UseCase uc = GetParam();
  const auto m = model::make_gpt({.num_blocks = 32,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  auto opt = fast_options();
  if (uc == UseCase::GradualPruning) {
    // Compress the schedule so most of the test window trains the 90%-
    // sparse model (the regime the paper's speedup refers to).
    opt.pruning.schedule.start_iter = 0;
    opt.pruning.schedule.frequency = 200;
    opt.pruning.schedule.num_steps = 4;
    opt.session.iterations = 6000;
    opt.session.sim_stride = 100;
    opt.session.rebalance_interval = 200;
  }
  if (uc == UseCase::SparseAttention || uc == UseCase::MixtureOfDepths) {
    opt.session.rebalance_interval = 1;  // routing changes every iteration
    opt.session.sim_stride = 10;
    opt.session.iterations = 1000;
  }
  if (uc == UseCase::EarlyExit) {
    // Mature the exit behaviour quickly so the short test window measures
    // the steady state.
    opt.early_exit.confidence_ramp_iters = 400;
  }
  const auto static_run =
      run(m, uc, opt, runtime::BalancingMode::StaticUniform);
  const auto dynmo_part =
      run(m, uc, opt, runtime::BalancingMode::DynMo,
          balance::Algorithm::Partition);
  const auto dynmo_diff =
      run(m, uc, opt, runtime::BalancingMode::DynMo,
          balance::Algorithm::Diffusion);
  // DynMo never loses by more than its own overhead margin...
  EXPECT_GT(dynmo_part.tokens_per_sec, 0.93 * static_run.tokens_per_sec);
  EXPECT_GT(dynmo_diff.tokens_per_sec, 0.93 * static_run.tokens_per_sec);
  EXPECT_GT(dynmo_part.rebalance_count, 0);
  // ...and the schemes with big structural imbalance must show real wins
  // over the static placement of the *same* dynamic model.  (The paper's
  // headline factors compare against the no-dynamism baseline — covered by
  // the bench harnesses; the vs-static margin is smaller.)
  const double best =
      std::max(dynmo_part.tokens_per_sec, dynmo_diff.tokens_per_sec);
  if (uc == UseCase::EarlyExit) {
    EXPECT_GT(best, 1.2 * static_run.tokens_per_sec) << to_string(uc);
  } else if (uc == UseCase::SparseAttention ||
             uc == UseCase::GradualPruning) {
    EXPECT_GT(best, 1.03 * static_run.tokens_per_sec) << to_string(uc);
  }
}

INSTANTIATE_TEST_SUITE_P(UseCases, SessionDynamicSweep,
                         ::testing::Values(UseCase::GradualPruning,
                                           UseCase::LayerFreezing,
                                           UseCase::SparseAttention,
                                           UseCase::EarlyExit,
                                           UseCase::MixtureOfDepths),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Session, MoeDynMoReducesBubble) {
  const auto m = model::make_moe(model::llama_moe_3_5b_config(), "m");
  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.num_microbatches = 16;
  opt.session.iterations = 200;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;
  opt.moe.tokens_per_microbatch = 512;
  const auto static_run =
      run(m, UseCase::Moe, opt, runtime::BalancingMode::StaticUniform);
  const auto dynmo =
      run(m, UseCase::Moe, opt, runtime::BalancingMode::DynMo);
  EXPECT_LE(dynmo.avg_bubble_ratio, static_run.avg_bubble_ratio + 0.02);
  const auto tutel =
      run(m, UseCase::Moe, opt, runtime::BalancingMode::Tutel);
  // Tutel mitigates but never moves layers: between static and DynMo.
  EXPECT_GE(tutel.tokens_per_sec, 0.98 * static_run.tokens_per_sec);
}

TEST(Session, EgeriaPaysBookkeepingOverhead) {
  const auto m = model::make_gpt({.num_blocks = 24,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  auto opt = fast_options();
  const auto egeria =
      run(m, UseCase::LayerFreezing, opt, runtime::BalancingMode::Egeria);
  EXPECT_GT(egeria.baseline_overhead_s, 0.0);
  EXPECT_EQ(egeria.rebalance_count, 0);
}

TEST(Session, RepackReleasesWorkersWithoutThroughputCollapse) {
  const auto m = model::make_gpt({.num_blocks = 24,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  auto opt = fast_options();
  opt.session.pipeline_stages = 16;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 6000;
  opt.session.sim_stride = 50;
  opt.session.rebalance_interval = 100;
  const auto plain = run(m, UseCase::EarlyExit, opt,
                         runtime::BalancingMode::DynMo);
  opt.session.repack = true;
  opt.session.repack_interval = 500;
  const auto packed = run(m, UseCase::EarlyExit, opt,
                          runtime::BalancingMode::DynMo);
  EXPECT_GT(packed.repack_count, 0);
  EXPECT_LT(packed.avg_active_workers, 16.0);
  EXPECT_GT(packed.tokens_per_sec, 0.75 * plain.tokens_per_sec);
  EXPECT_EQ(plain.repack_count, 0);
}

TEST(Session, ForcedRepackToTinyWorkerCountDetectsOom) {
  // hidden-4096 48-block model on 2 GPUs: parameter state alone busts 80GB.
  const auto m = model::make_gpt({.num_blocks = 48,
                                  .hidden = 4096,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.num_microbatches = 8;
  opt.session.micro_batch = 1;
  opt.session.iterations = 400;
  opt.session.sim_stride = 50;
  opt.session.rebalance_interval = 100;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.repack = true;
  opt.session.repack_interval = 100;
  opt.session.repack_policy =
      runtime::SessionConfig::RepackPolicy::MemoryFirstFit;
  opt.session.repack_target_workers = 2;
  Session s(m, UseCase::GradualPruning, opt);
  const auto r = s.run();
  EXPECT_TRUE(r.oom);
}

TEST(Session, OverheadFractionSmallForSlowCadence) {
  const auto m = model::make_gpt({.num_blocks = 32,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  auto opt = fast_options();
  opt.session.iterations = 8000;
  opt.session.sim_stride = 100;
  opt.session.rebalance_interval = 1000;
  const auto r = run(m, UseCase::GradualPruning, opt,
                     runtime::BalancingMode::DynMo);
  EXPECT_LT(r.overhead_fraction, 0.01);  // paper: <0.1% for pruning
  EXPECT_GT(r.overhead.total_s(), 0.0);
}

TEST(Session, SamplesAreRecorded) {
  const auto m = model::make_gpt({.num_blocks = 16,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  auto opt = fast_options();
  const auto r = run(m, UseCase::EarlyExit, opt,
                     runtime::BalancingMode::DynMo);
  ASSERT_FALSE(r.samples.empty());
  EXPECT_EQ(r.samples.front().iter, 0);
  for (const auto& s : r.samples) {
    EXPECT_GT(s.time_s, 0.0);
    EXPECT_GE(s.idleness, 0.0);
    EXPECT_LE(s.compute_fraction, 1.0 + 1e-9);
  }
}

TEST(Session, TokensPerIterationAccounting) {
  const auto m = model::make_gpt({.num_blocks = 16,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt = fast_options();
  opt.session.mode = runtime::BalancingMode::StaticUniform;
  Session s(m, UseCase::Static, opt);
  runtime::TrainingSession ts(s.model(), opt.session, nullptr);
  // micro_batch * microbatches * seq * dp
  EXPECT_DOUBLE_EQ(ts.tokens_per_iteration(), 2.0 * 16 * 2048 * 2);
}

TEST(Session, InvalidConfigsThrow) {
  const auto m = model::make_gpt({.num_blocks = 4,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt = fast_options();
  opt.session.pipeline_stages = 8;  // more stages than layers
  EXPECT_THROW((void)Session(m, UseCase::Static, opt).run(), Error);
}

}  // namespace
}  // namespace dynmo
