// Payoff-window migration acceptance (ROADMAP "Cost-aware map
// acceptance"): a candidate map must recoup its exposed migration cost —
// priced over the deployment's links, mirrored across DP replicas —
// within the configured number of iterations of projected bottleneck
// gain.  Covers the exposed-cost split, the orchestrator's accept/reject
// decision, the hierarchical balancer's inter-node gate, and the
// session-level byte savings at every-iteration cadences.
#include <gtest/gtest.h>

#include "balance/migration.hpp"
#include "balance/rebalancer.hpp"
#include "cluster/hier_balancer.hpp"
#include "cluster/topology.hpp"
#include "dynmo/dynmo.hpp"

namespace dynmo {
namespace {

using balance::MapDecision;

TEST(MigrationCost, ExposedCostSplitsByNodeMembership) {
  comm::CostModelConfig cfg;
  cfg.gpus_per_node = 2;  // ranks {0,1} node 0, {2,3} node 1, ...
  const comm::CostModel net(cfg);
  balance::MigrationPlan plan;
  plan.transfers.push_back({0, /*src=*/0, /*dst=*/1, 100.0});
  plan.transfers.push_back({1, /*src=*/0, /*dst=*/3, 50.0});

  const auto cost = plan.exposed_cost(net);  // stage s is rank s
  EXPECT_DOUBLE_EQ(cost.intra_node_bytes, 100.0);
  EXPECT_DOUBLE_EQ(cost.inter_node_bytes, 50.0);
  EXPECT_DOUBLE_EQ(cost.total_bytes(), plan.total_bytes());
  EXPECT_GT(cost.time_s, 0.0);
  EXPECT_DOUBLE_EQ(cost.time_s, plan.estimated_time_s(net));

  // A placement that puts both endpoints of every transfer on one node
  // turns all traffic intra.
  const int stage_to_rank[] = {0, 1, 2, 1};
  const auto local = plan.exposed_cost(net, stage_to_rank);
  EXPECT_DOUBLE_EQ(local.inter_node_bytes, 0.0);
  EXPECT_DOUBLE_EQ(local.intra_node_bytes, 150.0);
}

/// Mildly skewed times (a rebalance improves the bottleneck well past the
/// hysteresis bar) but heavyweight layer state: the move only pays off
/// over many iterations.
balance::LayerProfile heavy_state_profile() {
  balance::LayerProfile p;
  for (int i = 0; i < 12; ++i) {
    p.time_s.push_back(i < 4 ? 2e-3 : 1e-3);
    p.memory_bytes.push_back(10.0 * (1u << 30));  // 10 GiB per layer
    p.params.push_back(50.0);
  }
  return p;
}

balance::RebalanceConfig payoff_cfg(double window) {
  balance::RebalanceConfig cfg;
  cfg.algorithm = balance::Algorithm::Partition;
  cfg.by = balance::BalanceBy::Time;
  cfg.payoff_window_iters = window;
  return cfg;
}

TEST(Rebalancer, PayoffWindowRejectsExpensiveBarelyBetterMaps) {
  const auto profile = heavy_state_profile();
  const auto start = pipeline::StageMap::uniform(12, 4);

  // Tight window: the ~ms/iter gain cannot amortize tens of ms of
  // migration; the candidate is rejected and nothing moves.
  balance::Rebalancer tight(payoff_cfg(1.0), comm::CostModel{});
  const auto rejected = tight.rebalance(profile, start);
  EXPECT_EQ(rejected.decision, MapDecision::RejectedPayoff);
  EXPECT_EQ(rejected.map, start);
  EXPECT_TRUE(rejected.migration.empty());
  EXPECT_GT(rejected.candidate_bytes, 0.0);
  EXPECT_GT(rejected.exposed_cost_s,
            rejected.projected_gain_s * 1.0);
  EXPECT_DOUBLE_EQ(rejected.overhead.migrate_s, 0.0);

  // Generous window: the same candidate amortizes and is adopted.
  balance::Rebalancer generous(payoff_cfg(1e6), comm::CostModel{});
  const auto accepted = generous.rebalance(profile, start);
  EXPECT_EQ(accepted.decision, MapDecision::Accepted);
  EXPECT_FALSE(accepted.migration.empty());
  EXPECT_GT(accepted.overhead.migrate_s, 0.0);
  EXPECT_LT(accepted.imbalance_after, accepted.imbalance_before);

  // Disabled window (the pre-payoff behavior) accepts it too.
  balance::Rebalancer off(payoff_cfg(0.0), comm::CostModel{});
  EXPECT_EQ(off.rebalance(profile, start).decision, MapDecision::Accepted);
}

TEST(Rebalancer, ReplicaMirroringMultipliesPricedCost) {
  const auto profile = heavy_state_profile();
  const auto start = pipeline::StageMap::uniform(12, 4);

  // Find the single-replica exposed cost, then pick a window that covers
  // it but not 8 mirrored copies of it.
  auto cfg = payoff_cfg(1e6);
  balance::Rebalancer probe(cfg, comm::CostModel{});
  const auto base = probe.rebalance(profile, start);
  ASSERT_EQ(base.decision, MapDecision::Accepted);
  ASSERT_GT(base.projected_gain_s, 0.0);
  const double window = 2.0 * base.exposed_cost_s / base.projected_gain_s;

  cfg.payoff_window_iters = window;
  const auto solo = balance::Rebalancer(cfg, comm::CostModel{})
                        .rebalance(profile, start);
  EXPECT_EQ(solo.decision, MapDecision::Accepted);

  cfg.migration_cost_multiplier = 8.0;  // DP grid mirrors every move
  const auto grid = balance::Rebalancer(cfg, comm::CostModel{})
                        .rebalance(profile, start);
  EXPECT_EQ(grid.decision, MapDecision::RejectedPayoff);
  EXPECT_NEAR(grid.exposed_cost_s, 8.0 * solo.exposed_cost_s,
              1e-9 * grid.exposed_cost_s);
}

TEST(Rebalancer, OverlapDiscountsExposedCost) {
  const auto profile = heavy_state_profile();
  const auto start = pipeline::StageMap::uniform(12, 4);
  // Fully overlapped migrations cost nothing exposed: even a one-iteration
  // window accepts.
  auto cfg = payoff_cfg(1.0);
  cfg.migration_exposed_fraction = 0.0;
  const auto out =
      balance::Rebalancer(cfg, comm::CostModel{}).rebalance(profile, start);
  EXPECT_EQ(out.decision, MapDecision::Accepted);
  EXPECT_DOUBLE_EQ(out.exposed_cost_s, 0.0);
}

// ------------------------------------------------- hierarchical balancer

TEST(HierBalancer, PayoffWindowBlocksUnamortizedInterNodeShifts) {
  // 2 nodes x 2 GPUs, 4 stages, node-level skew: level 2 wants to shift
  // layers across the fabric.  Heavy layer state makes that shift cost
  // ~seconds of InfiniBand time.
  const auto topo = cluster::Topology::make_homogeneous(
      2, 2, hw::GpuSpec::h100_sxm5(),
      cluster::default_link(cluster::LinkType::NvLink),
      cluster::default_link(cluster::LinkType::InfiniBand));
  balance::DiffusionRequest req;
  for (int l = 0; l < 16; ++l) {
    req.weights.push_back(l < 8 ? 2.0 : 0.6);
    req.memory_bytes.push_back(10.0 * (1u << 30));
  }
  const auto start = pipeline::StageMap::uniform(16, 4);

  cluster::HierConfig cfg;
  cfg.payoff_window_iters = 1e-3;  // gain is ~1 weight-unit/iter
  const auto blocked =
      cluster::HierarchicalBalancer(topo, cfg).balance(req, start);
  EXPECT_FALSE(blocked.used_inter_node);
  EXPECT_TRUE(blocked.inter_rejected_by_payoff);
  EXPECT_GT(blocked.inter_exposed_cost_s, 0.0);
  EXPECT_EQ(blocked.inter_node_moves, 0);

  cfg.payoff_window_iters = 1e6;
  const auto adopted =
      cluster::HierarchicalBalancer(topo, cfg).balance(req, start);
  EXPECT_TRUE(adopted.used_inter_node);
  EXPECT_FALSE(adopted.inter_rejected_by_payoff);
  EXPECT_GT(adopted.inter_node_moves, 0);
  EXPECT_LT(adopted.imbalance_after, blocked.imbalance_after);
}

// ---------------------------------------------------------- session level

/// MoE routing noise on a fabric-heavy deployment (8 nodes x 2 GPUs, 16
/// stages) with every-iteration rebalancing — the regime the payoff rule
/// exists for: most candidate maps are barely better than the current one
/// yet move multi-GiB expert layers.
Options moe_fabric_options() {
  Options opt;
  opt.session.pipeline_stages = 16;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 300;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;
  opt.moe.tokens_per_microbatch = 512;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.algorithm = balance::Algorithm::Diffusion;
  // A bottleneck-only bar routing swings easily clear — the failure mode
  // the payoff window fixes: a 1%-better map moving tens of GiB passes
  // any pure-bottleneck hysteresis.
  opt.session.min_bottleneck_gain = 0.005;
  opt.session.deployment = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_homogeneous(
          8, 2, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      16);
  return opt;
}

runtime::SessionResult run_moe(const Options& opt) {
  Session s(model::make_moe(model::llama_moe_3_5b_config(), "m"),
            UseCase::Moe, opt);
  return s.run();
}

// The acceptance-criterion test: at an every-iteration cadence, the
// payoff window issues strictly fewer migration bytes than bottleneck-only
// hysteresis at equal-or-better simulated throughput.
TEST(SessionPayoff, EveryIterationCadenceMovesFewerBytesAtSameThroughput) {
  auto opt = moe_fabric_options();
  const auto baseline = run_moe(opt);  // payoff_window_iters = 0

  // ~10 iterations of projected gain must cover the exposed transfer cost:
  // the structural rebalance (big persistent gain) passes, the marginal
  // noise-chasing ones (small gain, tens of GiB of expert state) do not.
  opt.session.payoff_window_iters = 10.0;
  const auto payoff = run_moe(opt);

  ASSERT_GT(baseline.rebalance_count, 0);
  EXPECT_GT(payoff.maps_rejected_payoff, 0);
  EXPECT_GT(payoff.migration_bytes_avoided, 0.0);
  EXPECT_EQ(baseline.maps_rejected_payoff, 0);

  const double baseline_bytes = baseline.intra_node_migration_bytes +
                                baseline.inter_node_migration_bytes;
  const double payoff_bytes = payoff.intra_node_migration_bytes +
                              payoff.inter_node_migration_bytes;
  EXPECT_GT(baseline_bytes, 0.0);
  EXPECT_LT(payoff_bytes, baseline_bytes);

  // Equal-or-better throughput: the skipped migrations were not buying
  // bottleneck improvements worth their exposed cost.  (Tiny slack only
  // for the wall-clock decide_s the session measures.)
  EXPECT_GE(payoff.tokens_per_sec, 0.999 * baseline.tokens_per_sec);
}

TEST(SessionPayoff, GridDeploymentMirrorsAvoidedBytesAcrossReplicas) {
  // Same pipeline mirrored over 2 replicas: every rejected candidate's
  // avoided traffic doubles, exactly like the issued-byte counters.
  const int dp = 2, pp = 8;
  Options opt;
  opt.session.pipeline_stages = pp;
  opt.session.data_parallel = dp;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 300;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;
  opt.moe.tokens_per_microbatch = 512;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.algorithm = balance::Algorithm::Diffusion;
  opt.session.payoff_window_iters = 25.0;
  opt.session.deployment = cluster::Deployment::make_grid_topology_aware(
      cluster::Topology::make_homogeneous(
          8, 2, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      dp, pp, cluster::GridOrientation::PpInner);

  const auto r = run_moe(opt);
  EXPECT_GT(r.maps_rejected_payoff, 0);
  EXPECT_GT(r.migration_bytes_avoided, 0.0);
}

// Regression: a deployment session whose re-pack shrinks the pipeline
// must keep rebalancing with per-stage vectors (capacities,
// stage_to_rank) truncated to the survivors — the stale full-size
// vectors used to abort the diffusion balancer's size checks.
TEST(SessionPayoff, DeploymentRepackShrinksPerStageVectors) {
  const auto m = model::make_gpt({.num_blocks = 24,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt;
  opt.session.pipeline_stages = 16;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 6000;
  opt.session.sim_stride = 50;
  opt.session.rebalance_interval = 100;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.algorithm = balance::Algorithm::Diffusion;
  opt.session.repack = true;
  opt.session.repack_interval = 500;
  opt.session.deployment = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_homogeneous(
          8, 2, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      16);
  Session s(m, UseCase::EarlyExit, opt);
  const auto r = s.run();  // used to DYNMO_CHECK-abort after the 1st pack
  EXPECT_GT(r.repack_count, 0);
  EXPECT_LT(r.final_map.num_stages(), 16);
  EXPECT_GT(r.tokens_per_sec, 0.0);
}

TEST(SessionPayoff, RepackSkippedWhenWindowCannotAmortize) {
  const auto m = model::make_gpt({.num_blocks = 24,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt;
  opt.session.pipeline_stages = 16;
  opt.session.data_parallel = 2;
  opt.session.micro_batch = 2;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 6000;
  opt.session.sim_stride = 50;
  opt.session.rebalance_interval = 100;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.repack = true;
  opt.session.repack_interval = 500;

  Session plain(m, UseCase::EarlyExit, opt);
  const auto packs = plain.run();
  ASSERT_GT(packs.repack_count, 0);

  // A sub-iteration window can never amortize a multi-GiB pack.
  auto tight = opt;
  tight.session.payoff_window_iters = 1e-3;
  Session gated(m, UseCase::EarlyExit, tight);
  const auto blocked = gated.run();
  EXPECT_EQ(blocked.repack_count, 0);
  EXPECT_GT(blocked.maps_rejected_payoff, 0);
}

}  // namespace
}  // namespace dynmo
