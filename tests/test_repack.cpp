// Unit tests for re-packing (paper Algorithm 2) and the elastic manager
// (ECK-mock release protocol + communicator split fencing).
#include <gtest/gtest.h>

#include <thread>

#include "balance/migration.hpp"
#include "repack/elastic.hpp"
#include "repack/repack.hpp"

namespace dynmo::repack {
namespace {

TEST(FirstFit, MergesPairsUnderCapacity) {
  // Four workers at 30 units each, capacity 100: pairs merge.
  const auto res = repack_first_fit({30, 30, 30, 30}, {2, 2, 2, 2},
                                    /*max_mem=*/100, /*target=*/1);
  EXPECT_LT(res.active_workers(), 4);
  // Every transfer's source must be deactivated.
  for (const auto& t : res.transfers) {
    EXPECT_FALSE(res.active[static_cast<std::size_t>(t.src_worker)]);
  }
  // Memory conserved.
  double total = 0.0;
  for (double m : res.mem_usage) total += m;
  EXPECT_DOUBLE_EQ(total, 120.0);
  // No active worker exceeds capacity.
  for (std::size_t i = 0; i < res.active.size(); ++i) {
    if (res.active[i]) EXPECT_LT(res.mem_usage[i], 100.0);
  }
}

TEST(FirstFit, RespectsTargetFloor) {
  const auto res =
      repack_first_fit({10, 10, 10, 10}, {1, 1, 1, 1}, 100, /*target=*/3);
  EXPECT_GE(res.active_workers(), 3);
}

TEST(FirstFit, NothingFitsNothingMoves) {
  const auto res = repack_first_fit({80, 80, 80}, {4, 4, 4}, 100, 1);
  EXPECT_EQ(res.active_workers(), 3);
  EXPECT_TRUE(res.transfers.empty());
}

TEST(FirstFit, TransfersEnumerateSourceLayers) {
  const auto res = repack_first_fit({10, 10}, {3, 2}, 100, 1);
  EXPECT_EQ(res.active_workers(), 1);
  ASSERT_EQ(res.transfers.size(), 3u);  // all of worker 0's layers
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(res.transfers[i].src_worker, 0);
    EXPECT_EQ(res.transfers[i].dst_worker, 1);
    EXPECT_EQ(res.transfers[i].layer_index, i);
  }
  EXPECT_EQ(res.num_layers[1], 5u);
}

TEST(FirstFit, InputValidation) {
  EXPECT_THROW((void)repack_first_fit({1}, {1, 2}, 10, 1), Error);
  EXPECT_THROW((void)repack_first_fit({1}, {1}, 0, 1), Error);
}

TEST(ContiguousRepack, PacksToFewestWorkers) {
  ContiguousRepackRequest req;
  req.memory_bytes = std::vector<double>(8, 10.0);  // 80 total
  req.mem_capacity = 50.0;
  req.fill_fraction = 1.0;
  const auto res = repack_contiguous(req, 8);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.active_workers, 2);  // 40 + 40
  EXPECT_EQ(res.map.num_stages(), 8);
  EXPECT_TRUE(res.map.stage_empty(7));
  // Memory within budget per active stage.
  const auto mem = res.map.stage_loads(req.memory_bytes);
  for (double m : mem) EXPECT_LE(m, 50.0);
}

TEST(ContiguousRepack, HonorsTargetWorkers) {
  ContiguousRepackRequest req;
  req.memory_bytes = std::vector<double>(8, 10.0);
  req.mem_capacity = 1000.0;  // everything would fit on one
  req.target_workers = 4;
  const auto res = repack_contiguous(req, 8);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.active_workers, 4);
}

TEST(ContiguousRepack, FlagsOversizedLayer) {
  ContiguousRepackRequest req;
  req.memory_bytes = {10.0, 200.0, 10.0};
  req.mem_capacity = 50.0;
  const auto res = repack_contiguous(req, 3);
  EXPECT_FALSE(res.feasible);
}

TEST(ContiguousRepack, InfeasibleWhenTooFewWorkers) {
  ContiguousRepackRequest req;
  req.memory_bytes = std::vector<double>(8, 10.0);
  req.mem_capacity = 11.0;  // one layer per worker
  req.fill_fraction = 1.0;
  const auto res = repack_contiguous(req, 4);
  EXPECT_FALSE(res.feasible);
}

TEST(Eck, ReleaseAccounting) {
  MockEckCluster cluster(16);
  JobManagerClient client(&cluster, "train-pod", 8);
  EXPECT_EQ(cluster.free_gpus(), 0);
  EXPECT_TRUE(client.resize_gpu_claim(5));
  EXPECT_EQ(cluster.free_gpus(), 3);
  EXPECT_EQ(client.claimed_gpus(), 5);
  // A pending job picks up the freed GPUs.
  EXPECT_EQ(cluster.schedule_pending_job(4), 3);
  EXPECT_EQ(cluster.free_gpus(), 0);
}

TEST(Eck, RejectsMalformedPatch) {
  MockEckCluster cluster(8);
  JobManagerClient client(&cluster, "p", 4);
  EXPECT_EQ(cluster.patch_pod(PatchRequest{"p", 2, 3}), 422);
  EXPECT_EQ(cluster.patch_pod(PatchRequest{"p", -1, -1}), 422);
}

TEST(Eck, RejectsGrowthBeyondFree) {
  MockEckCluster cluster(8);
  JobManagerClient client(&cluster, "p", 4);
  EXPECT_FALSE(client.resize_gpu_claim(40));
  EXPECT_EQ(client.claimed_gpus(), 4);
  // Shrinking then regrowing within the freed pool is fine.
  EXPECT_TRUE(client.resize_gpu_claim(2));
  EXPECT_TRUE(client.resize_gpu_claim(4));
}

TEST(Elastic, SplitFencesReleasedWorkers) {
  comm::World world(4);
  std::vector<std::thread> ts;
  const std::vector<bool> active = {true, true, false, true};
  for (int r = 0; r < 4; ++r) {
    ts.emplace_back([&world, r, &active] {
      comm::Communicator c = world.world_comm(r);
      const auto out = split_active_workers(c, active);
      if (r == 2) {
        EXPECT_TRUE(out.released);
        EXPECT_FALSE(out.active.has_value());
      } else {
        EXPECT_FALSE(out.released);
        ASSERT_TRUE(out.active.has_value());
        EXPECT_EQ(out.active->size(), 3);
        // Rank order preserved among survivors: 0,1,3 -> 0,1,2.
        const int expected = r == 3 ? 2 : r;
        EXPECT_EQ(out.active->rank(), expected);
        out.active->barrier();  // survivors can proceed without rank 2
      }
    });
  }
  for (auto& t : ts) t.join();
}

TEST(Migration, PlanAndCost) {
  const auto before = pipeline::StageMap::from_boundaries({0, 2, 4});
  const auto after = pipeline::StageMap::from_boundaries({0, 3, 4});
  const std::vector<double> bytes = {100, 100, 100, 100};
  const auto plan = balance::plan_migration(before, after, bytes);
  ASSERT_EQ(plan.transfers.size(), 1u);
  EXPECT_EQ(plan.transfers[0].layer, 2u);
  EXPECT_EQ(plan.transfers[0].src_stage, 1);
  EXPECT_EQ(plan.transfers[0].dst_stage, 0);
  EXPECT_DOUBLE_EQ(plan.total_bytes(), 100.0);
  comm::CostModel net;
  EXPECT_GT(plan.estimated_time_s(net), 0.0);

  const auto none = balance::plan_migration(before, before, bytes);
  EXPECT_TRUE(none.empty());
  EXPECT_DOUBLE_EQ(none.estimated_time_s(net), 0.0);
}

}  // namespace
}  // namespace dynmo::repack
