// Cross-backend transport conformance suite (docs/TRANSPORT.md).
//
// Every test here runs once per TransportKind: the delivery contract —
// matched receives, per-(source,tag) FIFO, wildcards, context isolation,
// collective correctness on degenerate groups, and close()/shutdown()
// release semantics — is a property of the *interface*, so any backend
// that passes is a drop-in substitute under the threaded runtime and the
// fault-recovery machinery.  A new backend earns its place by being added
// to the INSTANTIATE list below and changing nothing else.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "comm/communicator.hpp"
#include "comm/transport.hpp"
#include "runtime/threaded.hpp"

namespace dynmo::comm {
namespace {

/// Run fn(rank, comm) on one thread per rank and join.
void run_ranks(World& world, int n,
               const std::function<void(int, Communicator&)>& fn) {
  std::vector<std::thread> ts;
  for (int r = 0; r < n; ++r) {
    ts.emplace_back([&world, r, &fn] {
      Communicator c = world.world_comm(r);
      fn(r, c);
    });
  }
  for (auto& t : ts) t.join();
}

class TransportConformance : public ::testing::TestWithParam<TransportKind> {
 protected:
  TransportKind kind() const { return GetParam(); }
};

// ---------------------------------------------------------------- P2P ----

TEST_P(TransportConformance, NameRoundTrips) {
  World world(2, kind());
  EXPECT_EQ(world.transport_kind(), kind());
  EXPECT_EQ(parse_transport(world.transport_name()), kind());
  EXPECT_THROW(parse_transport("carrier-pigeon"), Error);
}

TEST_P(TransportConformance, FifoPerSourceAndTag) {
  World world(3, kind());
  // Two senders interleave on the same tag; a third streams on another
  // tag.  Each (source, tag) stream must arrive in send order even though
  // the streams race each other.
  constexpr int kN = 200;
  run_ranks(world, 3, [](int rank, Communicator& c) {
    if (rank == 1 || rank == 2) {
      for (int i = 0; i < kN; ++i) c.send_value(0, 7, rank * 1000 + i);
      for (int i = 0; i < kN; ++i) {
        c.send_value(0, 8, 100000 + rank * 1000 + i);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(c.recv_value<int>(1, 7), 1000 + i);
        EXPECT_EQ(c.recv_value<int>(2, 8), 102000 + i);
      }
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(c.recv_value<int>(2, 7), 2000 + i);
        EXPECT_EQ(c.recv_value<int>(1, 8), 101000 + i);
      }
    }
  });
}

TEST_P(TransportConformance, TagMatchingOutOfOrder) {
  World world(2, kind());
  run_ranks(world, 2, [](int rank, Communicator& c) {
    if (rank == 0) {
      c.send_value(1, /*tag=*/10, 100);
      c.send_value(1, /*tag=*/20, 200);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 20), 200);
      EXPECT_EQ(c.recv_value<int>(0, 10), 100);
    }
  });
}

TEST_P(TransportConformance, AnySourceAnyTag) {
  const int n = 4;
  World world(n, kind());
  run_ranks(world, n, [n](int rank, Communicator& c) {
    if (rank != 0) {
      c.send_value(0, /*tag=*/rank, rank);
    } else {
      // Wildcard source with a fixed tag, then full wildcards: sources and
      // tags must be reported faithfully on the returned envelope.
      const Message fixed = c.recv(kAnySource, 2);
      EXPECT_EQ(fixed.source, 2);
      EXPECT_EQ(fixed.tag, 2);
      int sum = 0;
      for (int i = 0; i < n - 2; ++i) {
        const Message m = c.recv(kAnySource, kAnyTag);
        EXPECT_EQ(m.source, m.tag);
        Unpacker u(m.payload);
        sum += u.get<int>();
      }
      EXPECT_EQ(sum, 1 + 3);
    }
  });
}

TEST_P(TransportConformance, EmptyAndLargePayloads) {
  World world(2, kind());
  // Zero-byte frames and payloads far beyond one socket buffer must both
  // survive the trip intact (the socket backend loops partial reads).
  std::vector<double> big(1 << 16);
  std::iota(big.begin(), big.end(), 0.0);
  run_ranks(world, 2, [&big](int rank, Communicator& c) {
    if (rank == 0) {
      c.send(1, 1, {});
      c.send_vector<double>(1, 2, big);
    } else {
      EXPECT_TRUE(c.recv(0, 1).payload.empty());
      EXPECT_EQ(c.recv_vector<double>(0, 2), big);
    }
  });
}

// --------------------------------------------------- context isolation ----

TEST_P(TransportConformance, ContextIsolationAcrossSplitAndDup) {
  World world(2, kind());
  run_ranks(world, 2, [](int rank, Communicator& c) {
    auto sub = c.split(0, rank);
    ASSERT_TRUE(sub.has_value());
    auto dup = c.dup();
    if (rank == 0) {
      // Same (source, tag) on three communicators: wildcard receives on
      // each must only ever see their own context's message.
      c.send_value(1, 99, 111);
      sub->send_value(1, 99, 222);
      dup.send_value(1, 99, 333);
    } else {
      const Message md = dup.recv(kAnySource, kAnyTag);
      Unpacker ud(md.payload);
      EXPECT_EQ(ud.get<int>(), 333);
      const Message ms = sub->recv(kAnySource, kAnyTag);
      Unpacker us(ms.payload);
      EXPECT_EQ(us.get<int>(), 222);
      EXPECT_EQ(c.recv_value<int>(0, 99), 111);
    }
  });
}

// ------------------------------------------------- degenerate groups ----

TEST_P(TransportConformance, CollectivesOnSizeOneGroup) {
  World world(3, kind());
  run_ranks(world, 3, [](int rank, Communicator& c) {
    // Every rank its own color: each sub-communicator has exactly one
    // member, and every collective must degenerate to the identity.
    auto solo = c.split(rank, 0);
    ASSERT_TRUE(solo.has_value());
    EXPECT_EQ(solo->size(), 1);
    solo->barrier();
    Packer p;
    p.put(rank);
    const auto bc = solo->broadcast(p.take(), 0);
    Unpacker u(bc);
    EXPECT_EQ(u.get<int>(), rank);
    const auto sum = solo->allreduce_sum({static_cast<double>(rank), 4.0});
    EXPECT_DOUBLE_EQ(sum[0], rank);
    EXPECT_DOUBLE_EQ(sum[1], 4.0);
    const auto a2a = solo->alltoallv({{}});
    EXPECT_EQ(a2a.size(), 1u);
  });
}

TEST_P(TransportConformance, CollectivesOnNonContiguousGroup) {
  const int n = 6;
  World world(n, kind());
  run_ranks(world, n, [](int rank, Communicator& c) {
    // Global ranks {0,3,4} vs {1,2,5}: group rank, global rank, and the
    // routing between them must all disagree — collectives still line up.
    const int color = (rank == 0 || rank == 3 || rank == 4) ? 0 : 1;
    auto sub = c.split(color, rank);
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->size(), 3);
    EXPECT_EQ(sub->global_rank(), rank);
    sub->barrier();
    const auto all = sub->allgather_doubles({static_cast<double>(rank)});
    double sum = 0.0;
    for (const auto& v : all) sum += v[0];
    EXPECT_DOUBLE_EQ(sum, color == 0 ? 0.0 + 3.0 + 4.0 : 1.0 + 2.0 + 5.0);
    // P2P inside the group routes by *group* rank.
    if (sub->rank() == 0) sub->send_value(2, 5, rank);
    if (sub->rank() == 2) {
      const int got = sub->recv_value<int>(0, 5);
      EXPECT_EQ(got, color == 0 ? 0 : 1);
    }
  });
}

// ------------------------------------------------- close / shutdown ----

TEST_P(TransportConformance, ShutdownUnblocksReceiver) {
  World world(2, kind());
  std::thread receiver([&world] {
    Communicator c = world.world_comm(1);
    EXPECT_THROW((void)c.recv(0, 1), CommError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  world.shutdown();
  receiver.join();
}

TEST_P(TransportConformance, ShutdownMidCollectiveReleasesEveryRank) {
  // The Mailbox::close() wake-up test the ISSUE asks for: ranks 1..n-1
  // enter allreduce (send to all, then block receiving) while rank 0 never
  // joins; shutdown must release every blocked rank with CommError — a
  // hang here is the latent deadlock this suite exists to prevent.
  const int n = 4;
  World world(n, kind());
  std::atomic<int> blocked{0};
  std::atomic<int> released{0};
  std::vector<std::thread> ts;
  for (int r = 1; r < n; ++r) {
    ts.emplace_back([&world, &blocked, &released, r] {
      Communicator c = world.world_comm(r);
      blocked.fetch_add(1);
      EXPECT_THROW((void)c.allreduce_sum({1.0, 2.0}), CommError);
      released.fetch_add(1);
    });
  }
  while (blocked.load() < n - 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  world.shutdown();
  for (auto& t : ts) t.join();
  EXPECT_EQ(released.load(), n - 1);
}

TEST_P(TransportConformance, TryRecvThrowsAfterShutdownWhenDrained) {
  // The try_recv half of the wake-up gap: a poll loop (the threaded
  // runtime's abortable receive) must observe closure instead of spinning
  // forever against a world that will never deliver again.
  World world(2, kind());
  Communicator c = world.world_comm(1);
  run_ranks(world, 2, [](int rank, Communicator& cc) {
    if (rank == 0) cc.send_value(1, 3, 42);
    if (rank == 1) EXPECT_EQ(cc.recv_value<int>(0, 3), 42);
  });
  EXPECT_EQ(c.try_recv(0, 3), std::nullopt);  // open + empty: "nothing yet"
  world.shutdown();
  EXPECT_THROW((void)c.try_recv(0, 3), CommError);
}

TEST_P(TransportConformance, TryRecvDrainsQueuedMessagesAfterShutdown) {
  // Messages already delivered before close stay receivable (the threaded
  // runtime drains rank 0's stats inbox after joining workers) — only once
  // the queue is dry does try_recv report closure.
  World world(2, kind());
  Communicator receiver = world.world_comm(1);
  std::thread sender([&world] {
    Communicator c = world.world_comm(0);
    c.send_value(1, 10, 8);
    c.send_value(1, 11, 0);  // flush marker
  });
  // Block on the marker: both backends carry one source's frames over a
  // single in-order channel, so once the marker is out, tag 10 is queued.
  (void)receiver.recv(0, 11);
  sender.join();
  world.shutdown();
  auto m = receiver.try_recv(0, 10);
  ASSERT_TRUE(m.has_value());  // queued before close → still drains
  Unpacker u(m->payload);
  EXPECT_EQ(u.get<int>(), 8);
  EXPECT_THROW((void)receiver.try_recv(0, 10), CommError);  // now drained
}

// ------------------------------------------------- traffic counters ----

TEST_P(TransportConformance, CountersMatchInProcBaseline) {
  // The same deterministic script must meter identically on every
  // backend: payload bytes (not framing) and message counts are part of
  // the Transport contract because the overhead trajectories compare them.
  const auto run_script = [](TransportKind k) {
    World world(4, k);
    run_ranks(world, 4, [](int rank, Communicator& c) {
      c.barrier();
      (void)c.allreduce_sum({static_cast<double>(rank), 1.0, 2.0});
      auto sub = c.split(rank % 2, rank);
      sub->barrier();
      if (rank == 0) c.send_vector<double>(2, 5, {1.0, 2.0, 3.0});
      if (rank == 2) (void)c.recv(0, 5);
    });
    return std::pair{world.bytes_sent(), world.messages_sent()};
  };
  const auto baseline = run_script(TransportKind::InProc);
  const auto mine = run_script(kind());
  EXPECT_EQ(mine.first, baseline.first);
  EXPECT_EQ(mine.second, baseline.second);
  EXPECT_GT(mine.first, 0u);
  EXPECT_GT(mine.second, 0u);
}

// ------------------------------------------------- runtime parity ----

TEST(TransportParity, ThreadedRuntimeChecksumsMatchAcrossBackends) {
  // The acceptance bar in miniature: the threaded runtime — migrations and
  // weight updates included — must land on bit-identical output and weight
  // checksums no matter which backend carried its messages.  (The golden-
  // trace gate proves the same for full telemetry streams.)
  const auto run_on = [](TransportKind k) {
    runtime::ThreadedConfig cfg;
    cfg.workers = 3;
    cfg.num_layers = 6;
    cfg.hidden = 8;
    cfg.batch_rows = 2;
    cfg.microbatches = 2;
    cfg.apply_weight_update = true;
    cfg.transport = k;
    runtime::ThreadedPipeline pipe(cfg);
    runtime::PlanPhase p1, p2;
    p1.map = pipeline::StageMap::uniform(6, 3);
    p1.iterations = 2;
    p2.map = pipeline::StageMap::from_boundaries({0, 1, 3, 6});
    p2.iterations = 2;
    return pipe.run({p1, p2});
  };
  const auto inproc = run_on(TransportKind::InProc);
  const auto socket = run_on(TransportKind::Socket);
  EXPECT_EQ(inproc.output_checksum, socket.output_checksum);
  EXPECT_EQ(inproc.weight_checksums, socket.weight_checksums);
  EXPECT_EQ(inproc.bytes_migrated, socket.bytes_migrated);
  EXPECT_NE(socket.output_checksum, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(TransportKind::InProc,
                                           TransportKind::Socket),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace dynmo::comm
