// Fault & straggler injection (docs/FAULT.md): the deterministic
// injector, Rng::fork() substream isolation, worker-loss recovery priced
// as restart stall + lost work in the session, checkpoint-cadence
// accounting, degraded-GPU routing through the balancer, the stall
// ledger across elastic_transitions + fault_events, the threaded
// runtime's heartbeat-detected loss with bit-identical recovery, and a
// failed fleet job returning its GPUs to the pool.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "fault/injector.hpp"
#include "fleet/arbiter.hpp"
#include "model/layer.hpp"
#include "repack/elastic.hpp"
#include "runtime/session.hpp"
#include "runtime/threaded.hpp"
#include "telemetry/trace_reader.hpp"

namespace dynmo {
namespace {

// ---------------------------------------------------------------- injector

TEST(FaultInjector, ScheduleIsAPureFunctionOfPlanSeedWorkers) {
  fault::FaultPlan plan;
  plan.losses = {{.iter = 40, .worker = -1}, {.iter = 10, .worker = 2}};
  plan.mtbf_iters = 80.0;
  plan.horizon_iters = 400;
  plan.stragglers = {{.worker = 1, .multiplier = 0.5, .from_iter = 5}};
  const fault::Injector a(plan, 8, Rng(7));
  const fault::Injector b(plan, 8, Rng(7));
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].iter, b.schedule()[i].iter);
    EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
    EXPECT_EQ(a.schedule()[i].worker, b.schedule()[i].worker);
  }
  // Sorted by iteration, and the drawn victim lives in [1, workers).
  for (std::size_t i = 1; i < a.schedule().size(); ++i) {
    EXPECT_LE(a.schedule()[i - 1].iter, a.schedule()[i].iter);
  }
  for (const auto& e : a.schedule()) {
    if (e.kind == fault::EventKind::WorkerLoss) {
      EXPECT_GE(e.worker, 1);
      EXPECT_LT(e.worker, 8);
    }
  }
  // A different seed draws a different MTBF schedule.
  const fault::Injector c(plan, 8, Rng(8));
  bool any_diff = c.schedule().size() != a.schedule().size();
  for (std::size_t i = 0; !any_diff && i < a.schedule().size(); ++i) {
    any_diff = a.schedule()[i].iter != c.schedule()[i].iter ||
               a.schedule()[i].worker != c.schedule()[i].worker;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, PollFiresEachEventOnceAndResolvesVictimsAgainstAlive) {
  fault::FaultPlan plan;
  plan.losses = {{.iter = 3, .worker = 2}, {.iter = 7, .worker = 2}};
  fault::Injector inj(plan, 4, Rng(1));
  std::vector<bool> alive(4, true);
  EXPECT_TRUE(inj.poll(2, alive).empty());
  auto ev = inj.poll(5, alive);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].worker, 2);
  // Once fired, never again — and the second loss targeting the now-dead
  // rank 2 resolves to the next alive non-zero rank (3).
  alive[2] = false;
  EXPECT_TRUE(inj.poll(5, alive).empty());
  ev = inj.poll(10, alive);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].worker, 3);
  // With only rank 0 left, a loss has no legal victim and is dropped.
  fault::Injector inj2(plan, 4, Rng(1));
  std::vector<bool> only0 = {true, false, false, false};
  EXPECT_TRUE(inj2.poll(100, only0).empty());
}

TEST(FaultInjector, MultiplierStacksCoveringWindows) {
  fault::FaultPlan plan;
  plan.stragglers = {{.worker = 1, .multiplier = 0.5, .from_iter = 10}};
  plan.slowdowns = {
      {.worker = 1, .multiplier = 0.5, .from_iter = 20, .until_iter = 30}};
  const fault::Injector inj(plan, 4, Rng(1));
  EXPECT_DOUBLE_EQ(inj.multiplier(1, 5), 1.0);
  EXPECT_DOUBLE_EQ(inj.multiplier(1, 15), 0.5);
  EXPECT_DOUBLE_EQ(inj.multiplier(1, 25), 0.25);  // both windows cover
  EXPECT_DOUBLE_EQ(inj.multiplier(1, 30), 0.5);   // until is exclusive
  EXPECT_DOUBLE_EQ(inj.multiplier(2, 25), 1.0);
  EXPECT_TRUE(inj.any_degradation());
}

TEST(FaultInjector, RejectsRankZeroAndBadWindows) {
  fault::FaultPlan kill0;
  kill0.losses = {{.iter = 1, .worker = 0}};
  EXPECT_THROW((void)fault::Injector(kill0, 4, Rng(1)), Error);
  fault::FaultPlan badmult;
  badmult.stragglers = {{.worker = 1, .multiplier = 0.0, .from_iter = 0}};
  EXPECT_THROW((void)fault::Injector(badmult, 4, Rng(1)), Error);
}

// ------------------------------------------------------------- Rng::fork

TEST(RngFork, DoesNotPerturbOrReadTheParentStream) {
  Rng a(42);
  Rng b(42);
  (void)b();  // advance b, then fork both
  const auto fa = a.fork(9);
  auto fb = b.fork(9);
  auto fa2 = fa;
  // Forks derive from the seed as-constructed: identical regardless of
  // how many draws happened on the parent in between.
  EXPECT_EQ(fa2(), fb());
  // And forking never advanced the parent: a (never drawn) continues in
  // lockstep with a fresh engine, b stays one draw ahead.
  Rng fresh(42);
  (void)fresh();
  EXPECT_EQ(a(), Rng(42)());
  EXPECT_EQ(b(), fresh());
  // Distinct stream ids are independent streams.
  Rng c(42);
  EXPECT_NE(c.fork(1)(), c.fork(2)());
}

// ----------------------------------------------------------- session loss

// The one non-modeled term in a session's clock is the balancer's own
// decision time, which is genuinely *measured* (wall-clock of the
// partition/diffusion solve).  Determinism assertions compare everything
// else.
double modeled_time(const runtime::SessionResult& r) {
  return r.total_time_s - r.overhead.decide_s;
}

model::ModelDesc fault_model() {
  return model::make_gpt({.num_blocks = 24,
                          .include_embedding = false,
                          .include_lm_head = false});
}

runtime::SessionConfig fault_session_config() {
  runtime::SessionConfig cfg;
  cfg.pipeline_stages = 8;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 16;
  cfg.iterations = 1000;
  cfg.sim_stride = 10;
  cfg.rebalance_interval = 100;
  cfg.mode = runtime::BalancingMode::DynMo;
  cfg.algorithm = balance::Algorithm::Partition;
  cfg.balance_by = balance::BalanceBy::Time;
  return cfg;
}

runtime::SessionConfig recoverable_loss_config(repack::ControlPlane* eck) {
  auto cfg = fault_session_config();
  cfg.elastic.enabled = true;
  cfg.elastic.interval = 500;
  cfg.elastic.min_workers = 2;
  cfg.elastic.payoff_window_iters = 1e-3;  // no voluntary transitions
  cfg.elastic.restart_alpha_s = 0.5;
  cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
  cfg.elastic.cluster = eck;
  cfg.fault.losses = {{.iter = 450, .worker = 3}};
  return cfg;
}

TEST(SessionFault, WorkerLossShrinksToSurvivorsAndPricesLostWork) {
  const auto m = fault_model();
  repack::MockEckCluster eck(8);
  auto cfg = recoverable_loss_config(&eck);
  cfg.checkpoint_interval_iters = 200;  // last cut at 400, loss at 450
  runtime::TrainingSession session(m, cfg, nullptr);
  const auto r = session.run();

  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.worker_losses, 1);
  EXPECT_EQ(r.final_map.num_stages(), 7);
  EXPECT_EQ(eck.free_gpus(), 1);  // the dead GPU went back
  // The recovery stall includes respawn/bootstrap/checkpoint I/O *plus*
  // the re-done iterations since the cut at 400.
  EXPECT_GT(r.restart_stall_s, 0.0);
  EXPECT_GT(r.lost_work_s, 0.0);
  EXPECT_LT(r.lost_work_s, r.restart_stall_s);
  // Periodic checkpoints were written and priced separately from stall.
  EXPECT_GT(r.checkpoints_written, 0);
  EXPECT_GT(r.checkpoint_write_s, 0.0);

  // Identical run → identical modeled outcome.
  repack::MockEckCluster eck2(8);
  auto cfg2 = recoverable_loss_config(&eck2);
  cfg2.checkpoint_interval_iters = 200;
  runtime::TrainingSession session2(m, cfg2, nullptr);
  const auto r2 = session2.run();
  EXPECT_DOUBLE_EQ(modeled_time(r), modeled_time(r2));
  EXPECT_DOUBLE_EQ(r.restart_stall_s, r2.restart_stall_s);
  EXPECT_EQ(r.final_map, r2.final_map);
}

TEST(SessionFault, TighterCheckpointCadenceTradesWriteCostForLostWork) {
  const auto m = fault_model();
  const auto run_with_cadence = [&m](std::int64_t cadence) {
    repack::MockEckCluster eck(8);
    auto cfg = recoverable_loss_config(&eck);
    cfg.checkpoint_interval_iters = cadence;
    runtime::TrainingSession session(m, cfg, nullptr);
    return session.run();
  };
  const auto never = run_with_cadence(0);
  const auto tight = run_with_cadence(50);
  // Without periodic cuts every iteration since start is lost; a tight
  // cadence bounds the loss to <= 50 iterations but pays write costs.
  EXPECT_GT(never.lost_work_s, tight.lost_work_s);
  EXPECT_EQ(never.checkpoints_written, 0);
  EXPECT_DOUBLE_EQ(never.checkpoint_write_s, 0.0);
  EXPECT_GT(tight.checkpoints_written, 0);
  EXPECT_GT(tight.checkpoint_write_s, 0.0);
}

TEST(SessionFault, UnrecoverableLossFailsTheRunWithoutCharges) {
  const auto m = fault_model();
  repack::MockEckCluster eck(8);
  auto cfg = recoverable_loss_config(&eck);
  cfg.elastic.min_workers = 8;  // survivors below the floor → unrecoverable
  runtime::TrainingSession session(m, cfg, nullptr);
  const auto r = session.run();
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.worker_losses, 1);
  EXPECT_DOUBLE_EQ(r.restart_stall_s, 0.0);
  EXPECT_DOUBLE_EQ(r.lost_work_s, 0.0);
  // The run stopped at the loss, not at cfg.iterations.
  EXPECT_LT(r.samples.size() * 10u, 1000u);
}

TEST(SessionFault, LossesRequireElasticAndCadenceRequiresStrideAlignment) {
  const auto m = fault_model();
  auto cfg = fault_session_config();
  cfg.fault.losses = {{.iter = 100, .worker = 1}};
  EXPECT_THROW((void)runtime::TrainingSession(m, cfg, nullptr), Error);
  auto cfg2 = fault_session_config();
  cfg2.checkpoint_interval_iters = 15;  // not a multiple of sim_stride 10
  EXPECT_THROW((void)runtime::TrainingSession(m, cfg2, nullptr), Error);
}

// ------------------------------------------------------ straggler routing

TEST(SessionFault, DynMoRoutesAroundAPersistentStraggler) {
  const auto m = fault_model();
  const auto run_mode = [&m](runtime::BalancingMode mode) {
    auto cfg = fault_session_config();
    cfg.mode = mode;
    cfg.fault.stragglers = {
        {.worker = 4, .multiplier = 0.5, .from_iter = 0}};
    runtime::TrainingSession session(m, cfg, nullptr);
    return session.run();
  };
  const auto statik = run_mode(runtime::BalancingMode::StaticUniform);
  const auto dynmo = run_mode(runtime::BalancingMode::DynMo);
  EXPECT_EQ(dynmo.straggler_events, 1);  // onset only, never recovers
  // Static eats the 2x slowdown on a full stage; DynMo shifts layers off
  // the degraded GPU until capacities balance.
  EXPECT_GT(dynmo.tokens_per_sec, 1.2 * statik.tokens_per_sec);
}

TEST(SessionFault, TransientSlowdownDoesNotThrashOnRecovery) {
  const auto m = fault_model();
  auto cfg = fault_session_config();
  cfg.iterations = 2000;
  cfg.fault.slowdowns = {
      {.worker = 4, .multiplier = 0.5, .from_iter = 400, .until_iter = 1000}};
  runtime::TrainingSession session(m, cfg, nullptr);
  const auto r = session.run();
  EXPECT_EQ(r.straggler_events, 2);  // onset + recovery
  // After recovery the balancer converges back instead of oscillating:
  // bounded migration traffic and a healthy final bottleneck.
  auto ref_cfg = fault_session_config();
  ref_cfg.iterations = 2000;
  runtime::TrainingSession ref_session(m, ref_cfg, nullptr);
  const auto ref = ref_session.run();
  ASSERT_FALSE(r.samples.empty());
  ASSERT_FALSE(ref.samples.empty());
  EXPECT_LE(r.samples.back().time_s, 1.05 * ref.samples.back().time_s);
}

TEST(SessionFault, UnityMultiplierPlanIsBitIdenticalToFaultFree) {
  // A plan whose windows never degrade (multiplier 1.0) exercises the
  // whole injector path — including the Rng::fork() — without touching
  // the run: proof the fault stream is isolated from the session's
  // measurement-noise stream.
  const auto m = fault_model();
  auto cfg = fault_session_config();
  cfg.fault.stragglers = {
      {.worker = 2, .multiplier = 1.0, .from_iter = 100}};
  runtime::TrainingSession session(m, cfg, nullptr);
  const auto r = session.run();
  auto ref_cfg = fault_session_config();
  runtime::TrainingSession ref_session(m, ref_cfg, nullptr);
  const auto ref = ref_session.run();
  EXPECT_EQ(r.straggler_events, 1);
  EXPECT_DOUBLE_EQ(modeled_time(r), modeled_time(ref));
  EXPECT_EQ(r.final_map, ref.final_map);
  EXPECT_EQ(r.rebalance_count, ref.rebalance_count);
}

// ---------------------------------------------------------- stall ledger

TEST(SessionFault, RestartStallLedgerIsConsistentAcrossTables) {
  // A run with both an involuntary loss and a fleet-style forced shrink:
  // SessionResult::restart_stall_s must equal the sum of the stalls the
  // trace attributes to accepted elastic transitions (repacks excluded —
  // they are free) and worker-loss fault events.
  const auto m = fault_model();
  const auto dir =
      (std::filesystem::path(testing::TempDir()) / "fault_ledger").string();
  std::filesystem::remove_all(dir);
  repack::MockEckCluster eck(8);
  auto cfg = recoverable_loss_config(&eck);
  cfg.checkpoint_interval_iters = 200;
  cfg.telemetry.dir = dir;
  runtime::TrainingSession session(m, cfg, nullptr);
  session.start();
  for (int i = 0; i < 10; ++i) (void)session.step();
  session.request_shrink(7);  // forced preempt before the loss at 450
  while (!session.done()) (void)session.step();
  const auto r = session.finish();

  EXPECT_EQ(r.forced_shrinks, 1);
  EXPECT_EQ(r.worker_losses, 1);
  EXPECT_EQ(r.final_map.num_stages(), 6);

  telemetry::TraceReader reader(dir);
  double ledger = 0.0;
  for (const auto& row : reader.elastic_transitions()) {
    if (row.accepted && row.kind != "repack") ledger += row.stall_s;
  }
  int loss_rows = 0;
  for (const auto& row : reader.fault_events()) {
    if (row.kind == "worker_loss") {
      ++loss_rows;
      ledger += row.stall_s;
      EXPECT_GT(row.lost_work_s, 0.0);
      EXPECT_GT(row.lost_iters, 0);
      EXPECT_NEAR(row.stall_s,
                  row.alpha_s + row.bootstrap_s + row.ckpt_write_s +
                      row.ckpt_read_s + row.lost_work_s,
                  1e-9);
    }
  }
  EXPECT_EQ(loss_rows, 1);
  EXPECT_NEAR(ledger, r.restart_stall_s, 1e-9);
}

// -------------------------------------------------------- MTBF determinism

TEST(SessionFault, MtbfLossesAreDeterministicPerSeed) {
  const auto m = fault_model();
  const auto run_once = [&m]() {
    repack::MockEckCluster eck(8);
    auto cfg = fault_session_config();
    cfg.elastic.enabled = true;
    cfg.elastic.interval = 500;
    cfg.elastic.min_workers = 1;
    cfg.elastic.payoff_window_iters = 1e-3;
    cfg.elastic.restart_alpha_s = 0.5;
    cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
    cfg.elastic.cluster = &eck;
    cfg.fault.mtbf_iters = 300.0;  // horizon defaults to cfg.iterations
    cfg.fault.max_mtbf_losses = 3;
    cfg.checkpoint_interval_iters = 100;
    runtime::TrainingSession session(m, cfg, nullptr);
    return session.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_GE(a.worker_losses, 1);
  EXPECT_EQ(a.worker_losses, b.worker_losses);
  EXPECT_DOUBLE_EQ(modeled_time(a), modeled_time(b));
  EXPECT_DOUBLE_EQ(a.lost_work_s, b.lost_work_s);
  EXPECT_EQ(a.final_map, b.final_map);
}

// ------------------------------------------------------- threaded runtime

runtime::ThreadedConfig threaded_fault_config() {
  runtime::ThreadedConfig cfg;
  cfg.workers = 3;
  cfg.num_layers = 6;
  cfg.hidden = 16;
  cfg.batch_rows = 2;
  cfg.microbatches = 4;
  cfg.apply_weight_update = true;
  cfg.seed = 0xfee1;
  cfg.heartbeat_timeout_s = 0.15;
  return cfg;
}

std::vector<runtime::PlanPhase> threaded_fault_plan(int iterations) {
  return {{.map = pipeline::StageMap::uniform(6, 3),
           .iterations = iterations}};
}

// The acceptance-criterion test (ISSUE 8): a threaded run that loses a
// worker mid-iteration recovers on the surviving prefix with checkpoint
// checksums intact — bit-identical output and weights versus both a
// fault-free run and a re-run of the same faulty scenario.
TEST(ThreadedFault, HeartbeatDetectedLossRecoversBitIdentically) {
  auto clean_cfg = threaded_fault_config();
  runtime::ThreadedPipeline clean(clean_cfg);
  const auto ref = clean.run(threaded_fault_plan(10));
  ASSERT_EQ(ref.worker_losses, 0);

  auto cfg = threaded_fault_config();
  cfg.checkpoint_interval_iters = 4;
  cfg.fault.losses = {{.iter = 6, .worker = 2}};
  runtime::ThreadedPipeline faulty(cfg);
  const auto a = faulty.run(threaded_fault_plan(10));

  EXPECT_EQ(a.worker_losses, 1);
  ASSERT_EQ(a.dead_workers.size(), 1u);
  EXPECT_EQ(a.dead_workers[0], 2);
  EXPECT_GE(a.restarts, 1);
  EXPECT_GT(a.bytes_checkpoint, 0u);
  // The recovery rolled back to the cut at iteration 4 and re-executed —
  // the math is exactly the fault-free run's.
  EXPECT_EQ(a.output_checksum, ref.output_checksum);
  ASSERT_EQ(a.weight_checksums.size(), ref.weight_checksums.size());
  for (std::size_t l = 0; l < ref.weight_checksums.size(); ++l) {
    EXPECT_EQ(a.weight_checksums[l], ref.weight_checksums[l]) << l;
  }

  // And the faulty scenario itself reproduces bit-for-bit.
  runtime::ThreadedPipeline faulty2(cfg);
  const auto b = faulty2.run(threaded_fault_plan(10));
  EXPECT_EQ(b.worker_losses, 1);
  EXPECT_EQ(a.output_checksum, b.output_checksum);
  EXPECT_EQ(a.weight_checksums, b.weight_checksums);
}

TEST(ThreadedFault, LossComposesWithAMigrationPhasePlan) {
  // Loss strikes in phase 1 (after a scripted migration); later phases
  // keep running on the recovery placement.
  auto cfg = threaded_fault_config();
  cfg.workers = 4;
  cfg.num_layers = 8;
  cfg.checkpoint_interval_iters = 0;  // phase-start cuts only
  cfg.fault.losses = {{.iter = 7, .worker = 1}};
  std::vector<runtime::PlanPhase> plan = {
      {.map = pipeline::StageMap::uniform(8, 4), .iterations = 5},
      {.map = pipeline::StageMap::from_boundaries({0, 3, 5, 7, 8}),
       .iterations = 5},
      {.map = pipeline::StageMap::uniform(8, 4), .iterations = 5}};
  runtime::ThreadedPipeline faulty(cfg);
  const auto a = faulty.run(plan);
  EXPECT_EQ(a.worker_losses, 1);
  ASSERT_EQ(a.dead_workers.size(), 1u);
  EXPECT_EQ(a.dead_workers[0], 1);

  auto clean_cfg = threaded_fault_config();
  clean_cfg.workers = 4;
  clean_cfg.num_layers = 8;
  runtime::ThreadedPipeline clean(clean_cfg);
  const auto ref = clean.run(plan);
  EXPECT_EQ(a.output_checksum, ref.output_checksum);
  EXPECT_EQ(a.weight_checksums, ref.weight_checksums);
}

TEST(ThreadedFault, StragglerSlowsWallClockButNeverTheMath) {
  auto cfg = threaded_fault_config();
  cfg.fault.stragglers = {
      {.worker = 1, .multiplier = 0.25, .from_iter = 2}};
  runtime::ThreadedPipeline slow(cfg);
  const auto a = slow.run(threaded_fault_plan(8));
  EXPECT_EQ(a.worker_losses, 0);
  auto clean_cfg = threaded_fault_config();
  runtime::ThreadedPipeline clean(clean_cfg);
  const auto ref = clean.run(threaded_fault_plan(8));
  EXPECT_EQ(a.output_checksum, ref.output_checksum);
  EXPECT_EQ(a.weight_checksums, ref.weight_checksums);
}

TEST(ThreadedFault, FaultPlansRejectScriptedReleasesAndEmptyStages) {
  auto cfg = threaded_fault_config();
  cfg.fault.losses = {{.iter = 2, .worker = 1}};
  runtime::ThreadedPipeline p(cfg);
  std::vector<runtime::PlanPhase> release_plan = {
      {.map = pipeline::StageMap::uniform(6, 3), .iterations = 2},
      {.map = pipeline::StageMap::from_boundaries({0, 3, 6, 6}),
       .iterations = 2,
       .active = std::vector<bool>{true, true, false}}};
  EXPECT_THROW((void)p.run(release_plan), Error);
  std::vector<runtime::PlanPhase> empty_stage_plan = {
      {.map = pipeline::StageMap::from_boundaries({0, 3, 6, 6}),
       .iterations = 2}};
  EXPECT_THROW((void)p.run(empty_stage_plan), Error);
}

// ------------------------------------------------------------------ fleet

TEST(FleetFault, FailedJobReturnsItsGpusToThePool) {
  // Job B's worker loss is recoverable (its GPU goes straight back to the
  // pool via the shrink PATCH); job A dies outright below min_gpus — the
  // arbiter reaps the failed session and frees everything it held.
  fleet::ArbiterConfig fcfg;
  fcfg.total_gpus = 8;
  fcfg.payoff_window_iters = 0.0;
  auto make_faulty_job = [](const std::string& name, int min_gpus,
                            int loss_iter) {
    fleet::JobSpec spec;
    spec.name = name;
    spec.min_gpus = min_gpus;
    spec.max_gpus = 4;
    spec.factory = [name, min_gpus, loss_iter,
                    model = std::shared_ptr<model::ModelDesc>()](
                       int initial, repack::ControlPlane* cluster) mutable {
      model = std::make_shared<model::ModelDesc>(
          model::make_gpt({.num_blocks = 12,
                           .include_embedding = false,
                           .include_lm_head = false}));
      runtime::SessionConfig cfg;
      cfg.pipeline_stages = 4;
      cfg.micro_batch = 2;
      cfg.num_microbatches = 8;
      cfg.iterations = 400;
      cfg.sim_stride = 10;
      cfg.rebalance_interval = 50;
      cfg.mode = runtime::BalancingMode::DynMo;
      cfg.initial_active_workers = initial;
      cfg.elastic.enabled = true;
      cfg.elastic.interval = 100;
      cfg.elastic.min_workers = min_gpus;
      cfg.elastic.payoff_window_iters = 1e-3;
      cfg.elastic.cluster = cluster;
      cfg.elastic.pod = name;
      cfg.elastic.restart_alpha_s = 0.5;
      cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
      cfg.fault.losses = {{.iter = loss_iter, .worker = 2}};
      cfg.checkpoint_interval_iters = 50;
      return std::make_unique<runtime::TrainingSession>(*model, cfg,
                                                        nullptr);
    };
    return spec;
  };
  fleet::Arbiter arbiter(fcfg);
  arbiter.submit(make_faulty_job("doomed", 4, 100));     // loss → failed
  arbiter.submit(make_faulty_job("survivor", 2, 200));   // loss → shrink
  const auto res = arbiter.run();

  ASSERT_EQ(res.jobs.size(), 2u);
  EXPECT_TRUE(res.jobs[0].result.failed);
  EXPECT_EQ(res.jobs[0].result.worker_losses, 1);
  EXPECT_FALSE(res.jobs[1].result.failed);
  EXPECT_EQ(res.jobs[1].result.worker_losses, 1);
  EXPECT_EQ(res.jobs[1].result.final_map.num_stages(), 3);
  // Everything — the failed job's full claim and the survivor's dead
  // GPU — is back in the pool.
  EXPECT_EQ(arbiter.free_gpus(), 8);
}

}  // namespace
}  // namespace dynmo
