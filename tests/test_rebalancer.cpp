// Tests for the rebalance orchestrator: profile plumbing, imbalance
// accounting (paper Eq. 2), overhead breakdown, and by-param vs by-time.
#include <gtest/gtest.h>

#include "balance/rebalancer.hpp"
#include "core/error.hpp"

namespace dynmo::balance {
namespace {

LayerProfile skewed_profile() {
  LayerProfile p;
  // 12 layers: heavy head, light tail — early-exit-like.
  for (int i = 0; i < 12; ++i) {
    p.time_s.push_back(i < 4 ? 1.0 : 0.1);
    p.memory_bytes.push_back(100.0);
    p.params.push_back(50.0);  // uniform params
  }
  return p;
}

TEST(Profile, WeightsSelectors) {
  const auto p = skewed_profile();
  EXPECT_EQ(balance_weights(p, BalanceBy::Time), p.time_s);
  EXPECT_EQ(balance_weights(p, BalanceBy::Param), p.params);
}

TEST(Profile, NoiseKeepsPositive) {
  auto p = skewed_profile();
  Rng rng(3);
  add_measurement_noise(p, rng, 0.5);
  for (double t : p.time_s) EXPECT_GT(t, 0.0);
}

TEST(Rebalancer, ReducesTimeImbalance) {
  Rebalancer reb({Algorithm::Partition, BalanceBy::Time, 0.0, 0.0},
                 comm::CostModel{});
  const auto start = pipeline::StageMap::uniform(12, 4);
  const auto out = reb.rebalance(skewed_profile(), start);
  EXPECT_GT(out.imbalance_before, 0.5);
  EXPECT_LT(out.imbalance_after, out.imbalance_before);
  EXPECT_EQ(out.map.num_stages(), 4);
}

TEST(Rebalancer, ByParamIgnoresTimeSkew) {
  Rebalancer reb({Algorithm::Partition, BalanceBy::Param, 0.0, 0.0},
                 comm::CostModel{});
  const auto start = pipeline::StageMap::uniform(12, 4);
  const auto out = reb.rebalance(skewed_profile(), start);
  // Params are uniform: by-param sees nothing to fix.
  EXPECT_EQ(out.map, start);
  EXPECT_TRUE(out.migration.empty());
}

TEST(Rebalancer, DiffusionOutcomeCarriesConvergenceData) {
  Rebalancer reb({Algorithm::Diffusion, BalanceBy::Time, 0.0, 0.0},
                 comm::CostModel{});
  const auto start = pipeline::StageMap::uniform(12, 4);
  const auto out = reb.rebalance(skewed_profile(), start);
  ASSERT_TRUE(out.diffusion.has_value());
  EXPECT_GT(out.diffusion->rounds, 0);
  EXPECT_FALSE(out.diffusion->phi_history.empty());
}

TEST(Rebalancer, OverheadBreakdownPopulated) {
  Rebalancer reb({Algorithm::Partition, BalanceBy::Time, 0.0, 0.0},
                 comm::CostModel{});
  const auto start = pipeline::StageMap::uniform(12, 4);
  const auto out = reb.rebalance(skewed_profile(), start);
  EXPECT_GT(out.overhead.profile_s, 0.0);
  EXPECT_GT(out.overhead.decide_s, 0.0);
  EXPECT_GE(out.overhead.migrate_s, 0.0);
  EXPECT_NEAR(out.overhead.total_s(),
              out.overhead.profile_s + out.overhead.decide_s +
                  out.overhead.migrate_s,
              1e-15);
  if (!out.migration.empty()) EXPECT_GT(out.overhead.migrate_s, 0.0);
}

TEST(Rebalancer, MemoryCapacityForwarded) {
  // Pure by-time balancing would lump all 8 light layers (800 bytes)
  // together; a 500-byte capacity forbids that.
  RebalanceConfig cfg{Algorithm::Partition, BalanceBy::Time, 500.0, 0.0};
  Rebalancer reb(cfg, comm::CostModel{});
  const auto start = pipeline::StageMap::uniform(12, 4);
  const auto out = reb.rebalance(skewed_profile(), start);
  const auto p = skewed_profile();
  const auto mem = out.map.stage_loads(p.memory_bytes);
  for (double m : mem) EXPECT_LE(m, 500.0 + 1e-9);
}

TEST(Rebalancer, RejectsInconsistentProfile) {
  Rebalancer reb({}, comm::CostModel{});
  LayerProfile bad;
  bad.time_s = {1.0, 2.0};
  bad.memory_bytes = {1.0};
  bad.params = {1.0, 1.0};
  const auto start = pipeline::StageMap::uniform(2, 2);
  EXPECT_THROW((void)reb.rebalance(bad, start), Error);
}

TEST(Rebalancer, HierarchicalDeciderIsInjected) {
  RebalanceConfig cfg{Algorithm::HierarchicalDiffusion, BalanceBy::Time,
                      0.0, 0.0};
  bool invoked = false;
  cfg.hierarchical_decider = [&](const DiffusionRequest& req,
                                 const pipeline::StageMap& current) {
    invoked = true;
    EXPECT_EQ(req.weights.size(), current.num_layers());
    // Hand back the optimal contiguous split — what the real
    // cluster::HierarchicalBalancer would converge to on one node.
    return pipeline::StageMap::greedy_by_weight(req.weights,
                                                current.num_stages());
  };
  Rebalancer reb(cfg, comm::CostModel{});
  const auto start = pipeline::StageMap::uniform(12, 4);
  const auto out = reb.rebalance(skewed_profile(), start);
  EXPECT_TRUE(invoked);
  EXPECT_LT(out.imbalance_after, out.imbalance_before);
  EXPECT_FALSE(out.diffusion.has_value());
}

TEST(Rebalancer, HierarchicalWithoutDeciderFallsBackToDiffusion) {
  RebalanceConfig cfg{Algorithm::HierarchicalDiffusion, BalanceBy::Time,
                      0.0, 0.0};
  Rebalancer reb(cfg, comm::CostModel{});
  const auto start = pipeline::StageMap::uniform(12, 4);
  const auto out = reb.rebalance(skewed_profile(), start);
  ASSERT_TRUE(out.diffusion.has_value());
  EXPECT_LT(out.imbalance_after, out.imbalance_before);
}

TEST(Rebalancer, AlgorithmToString) {
  EXPECT_STREQ(to_string(Algorithm::Partition), "partition");
  EXPECT_STREQ(to_string(Algorithm::Diffusion), "diffusion");
  EXPECT_STREQ(to_string(Algorithm::HierarchicalDiffusion),
               "hier_diffusion");
}

TEST(OverheadBreakdown, Accumulates) {
  OverheadBreakdown a{1.0, 2.0, 3.0};
  const OverheadBreakdown b{0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.profile_s, 1.5);
  EXPECT_DOUBLE_EQ(a.total_s(), 7.5);
}

}  // namespace
}  // namespace dynmo::balance
