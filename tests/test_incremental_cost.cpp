// Differential suite for the incremental decision path (docs/COST_MODEL.md
// "Incremental recomputation").
//
// Every incremental surface ships a *_full_rescan() reference twin, and
// the contract is *exact* equality — EXPECT_EQ on doubles, not EXPECT_NEAR:
// the cached path must produce the very bits the naive rescan produces, so
// no decision, bottleneck, priced cost, or telemetry byte can drift.  The
// suite drives thousands of randomized perturbations through both paths in
// lockstep (tests/diff_check.hpp) at every level of the stack:
//
//   MaxTree          vs std::max_element            (indexed-max stress)
//   stage_of         vs the linear boundary scan
//   plan_migration   vs the full O(L) diff
//   CostSurface      vs naive stage_loads + max per perturbation
//   Rebalancer       incremental vs rebalance_full_rescan, decisions and
//                    all priced numbers
//   CostBuilder      memoized layer pricing vs full re-evaluation
//   Deployment       cached link/group/capacity lookups vs re-derivation,
//                    plus the resolver-call regression counter
//   TrainingSession  golden-trace proof: a full session run with the
//                    incremental path ON emits byte-identical telemetry
//                    tables to the same run with it OFF
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "balance/incremental.hpp"
#include "balance/migration.hpp"
#include "balance/rebalancer.hpp"
#include "cluster/deployment.hpp"
#include "diff_check.hpp"
#include "dynmo/dynmo.hpp"
#include "pipeline/cost_builder.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo {
namespace {

using balance::CostSurface;
using balance::MaxTree;
using pipeline::StageMap;

// ---------------------------------------------------------------------------
// MaxTree: randomized stress against the std::max_element oracle.

TEST(MaxTree, EmptyAndSingle) {
  MaxTree t;
  EXPECT_TRUE(t.empty());
  t.reset(std::vector<double>{7.5});
  EXPECT_EQ(t.max_value(), 7.5);
  EXPECT_EQ(t.argmax(), 0u);
  t.set(0, -3.0);
  EXPECT_EQ(t.max_value(), -3.0);
}

TEST(MaxTree, TiesResolveToLowestIndexLikeMaxElement) {
  const std::vector<double> v = {1.0, 5.0, 5.0, 2.0, 5.0};
  MaxTree t;
  t.reset(v);
  EXPECT_EQ(t.argmax(),
            static_cast<std::size_t>(
                std::max_element(v.begin(), v.end()) - v.begin()));
  EXPECT_EQ(t.argmax(), 1u);
}

TEST(MaxTree, RandomizedStressVsMaxElementOracle) {
  // 10k ops per seed, several seeds: point updates (with a small discrete
  // value pool so exact ties are frequent), removals modeled as -inf, and
  // occasional full rebuilds at a new size.  After every op the tree's O(1)
  // root must equal both its own full-rescan twin and an independent
  // std::max_element over a shadow vector.
  for (const std::uint64_t seed : {0x11u, 0x22u, 0x33u, 0x44u, 0x55u}) {
    std::mt19937_64 rng(seed);
    std::vector<double> shadow(1 + rng() % 257);
    for (auto& v : shadow) v = static_cast<double>(rng() % 97) * 0.125;
    MaxTree tree;
    tree.reset(shadow);
    for (int op = 0; op < 10'000; ++op) {
      const int kind = static_cast<int>(rng() % 10);
      if (kind < 8) {  // point update, ties likely
        const std::size_t i = rng() % shadow.size();
        const double v = static_cast<double>(rng() % 97) * 0.125;
        shadow[i] = v;
        tree.set(i, v);
      } else if (kind == 8) {  // remove: the stage drops out of the max
        const std::size_t i = rng() % shadow.size();
        shadow[i] = -std::numeric_limits<double>::infinity();
        tree.set(i, shadow[i]);
      } else {  // rebuild at a new size (insert/remove structure)
        shadow.assign(1 + rng() % 257, 0.0);
        for (auto& v : shadow) v = static_cast<double>(rng() % 97) * 0.125;
        tree.reset(shadow);
      }
      const auto oracle = std::max_element(shadow.begin(), shadow.end());
      ASSERT_EQ(tree.max_value(), *oracle) << "seed " << seed << " op " << op;
      ASSERT_EQ(tree.argmax(),
                static_cast<std::size_t>(oracle - shadow.begin()))
          << "seed " << seed << " op " << op;
      ASSERT_EQ(tree.max_value(), tree.max_value_full_rescan());
      ASSERT_EQ(tree.argmax(), tree.argmax_full_rescan());
      const std::size_t probe = rng() % shadow.size();
      ASSERT_EQ(tree.get(probe), shadow[probe]);
    }
  }
}

// ---------------------------------------------------------------------------
// StageMap::stage_of: binary search vs the linear scan, including
// duplicate boundaries (empty stages).

StageMap random_map(std::mt19937_64& rng, std::size_t layers, int stages) {
  std::vector<std::size_t> b;
  b.push_back(0);
  for (int s = 1; s < stages; ++s) b.push_back(rng() % (layers + 1));
  b.push_back(layers);
  std::sort(b.begin(), b.end());
  return StageMap::from_boundaries(std::move(b));
}

TEST(StageOf, BinarySearchMatchesLinearScan) {
  std::mt19937_64 rng(0xabcd);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t layers = 1 + rng() % 64;
    const int stages = 1 + static_cast<int>(rng() % 12);
    const StageMap map = random_map(rng, layers, stages);
    for (std::size_t l = 0; l < layers; ++l) {
      ASSERT_EQ(map.stage_of(l), map.stage_of_full_rescan(l))
          << map.to_string() << " layer " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// plan_migration: boundary-difference intervals vs the full O(L) diff.

TEST(PlanMigration, IntervalScanMatchesFullDiff) {
  std::mt19937_64 rng(0x5eed);
  for (int iter = 0; iter < 2'000; ++iter) {
    const std::size_t layers = 1 + rng() % 96;
    const int stages = 1 + static_cast<int>(rng() % 16);
    const StageMap before = random_map(rng, layers, stages);
    // Same stage count usually (the incremental interval path), a
    // different count sometimes (the explicit fallback).
    const int after_stages =
        (rng() % 8 == 0) ? 1 + static_cast<int>(rng() % 16) : stages;
    const StageMap after = random_map(rng, layers, after_stages);
    std::vector<double> bytes(layers);
    for (auto& x : bytes) x = static_cast<double>(rng() % 1000) * 1e6;
    const auto inc = balance::plan_migration(before, after, bytes);
    const auto ref = balance::plan_migration_full_rescan(before, after, bytes);
    ASSERT_EQ(inc.transfers.size(), ref.transfers.size())
        << before.to_string() << " -> " << after.to_string();
    for (std::size_t i = 0; i < ref.transfers.size(); ++i) {
      ASSERT_EQ(inc.transfers[i].layer, ref.transfers[i].layer);
      ASSERT_EQ(inc.transfers[i].src_stage, ref.transfers[i].src_stage);
      ASSERT_EQ(inc.transfers[i].dst_stage, ref.transfers[i].dst_stage);
      ASSERT_EQ(inc.transfers[i].bytes, ref.transfers[i].bytes);
    }
  }
}

// ---------------------------------------------------------------------------
// CostSurface: lockstep perturbation stream via the diff_check harness.

std::string dump_surface(const CostSurface& s) {
  std::ostringstream os;
  os << "  map: " << s.map().to_string() << "\n  sum_w:";
  for (double v : s.stage_loads_w()) os << " " << v;
  os << "\n  sum_t:";
  for (double v : s.stage_loads_t()) os << " " << v;
  os << "\n";
  return os.str();
}

// Jiggle a few internal boundaries of `map` within their legal range.
StageMap jiggle(std::mt19937_64& rng, const StageMap& map) {
  std::vector<std::size_t> b = map.boundaries();
  const int moves = 1 + static_cast<int>(rng() % 3);
  for (int m = 0; m < moves; ++m) {
    if (b.size() <= 2) break;
    const std::size_t i = 1 + rng() % (b.size() - 2);
    const std::size_t lo = b[i - 1];
    const std::size_t hi = b[i + 1];
    b[i] = lo + rng() % (hi - lo + 1);
  }
  return StageMap::from_boundaries(std::move(b));
}

TEST(CostSurface, LockstepDifferentialUnderRandomPerturbations) {
  // Thousands of randomized perturbations per seed: profile mutations
  // (sync), capacity changes (full reset), stage-count changes ("topology"
  // reshapes), and candidate evaluations with random commit/rollback.
  // After every step the cached bottlenecks must equal the naive rescan
  // twins bit-for-bit, and evaluate() must agree with
  // evaluate_full_rescan() on every field.
  for (const std::uint64_t seed : {0xa1u, 0xb2u, 0xc3u}) {
    const std::size_t layers = 48;
    std::vector<double> w(layers), t(layers), m(layers);
    std::mt19937_64 init(seed ^ 0xfeed);
    for (std::size_t l = 0; l < layers; ++l) {
      w[l] = 0.1 + static_cast<double>(init() % 100) * 0.01;
      t[l] = w[l];
      m[l] = static_cast<double>(init() % 64) * 1e6;
    }
    std::vector<double> caps;  // start uniform
    StageMap cur = StageMap::uniform(layers, 8);
    CostSurface surf;
    surf.reset(cur, w, t, m, caps);
    std::string last_eval_diff;  // set by perturb, read by compare

    const auto perturb = [&](std::mt19937_64& rng, int) {
      last_eval_diff.clear();
      switch (rng() % 5) {
        case 0: {  // mutate a handful of layers, re-sync
          const int n = 1 + static_cast<int>(rng() % 4);
          for (int i = 0; i < n; ++i) {
            const std::size_t l = rng() % layers;
            w[l] = 0.1 + static_cast<double>(rng() % 100) * 0.01;
            t[l] = w[l] * (0.5 + static_cast<double>(rng() % 10) * 0.1);
          }
          surf.sync(cur, w, t, m, caps);
          break;
        }
        case 1: {  // capacity perturbation (forces the full-reset arm)
          if (rng() % 2 == 0) {
            caps.assign(static_cast<std::size_t>(cur.num_stages()), 1.0);
            for (auto& c : caps)
              c = 0.25 + static_cast<double>(rng() % 8) * 0.25;
          } else {
            caps.clear();
          }
          surf.sync(cur, w, t, m, caps);
          break;
        }
        case 2: {  // topology reshape: new stage count over the same layers
          const int stages = 2 + static_cast<int>(rng() % 14);
          cur = StageMap::uniform(layers, stages);
          if (!caps.empty()) {
            caps.assign(static_cast<std::size_t>(stages), 1.0);
          }
          surf.sync(cur, w, t, m, caps);
          break;
        }
        default: {  // candidate evaluation + random commit/rollback
          const StageMap cand = jiggle(rng, cur);
          const bool adopt = rng() % 2 == 0;
          balance::SurfaceEval inc = surf.evaluate(cand);
          const balance::SurfaceEval ref = surf.evaluate_full_rescan(cand);
          std::ostringstream os;
          if (inc.norm_w_before != ref.norm_w_before)
            os << "norm_w_before " << inc.norm_w_before << " vs "
               << ref.norm_w_before << "; ";
          if (inc.norm_w_after != ref.norm_w_after)
            os << "norm_w_after " << inc.norm_w_after << " vs "
               << ref.norm_w_after << "; ";
          if (inc.norm_t_before != ref.norm_t_before)
            os << "norm_t_before " << inc.norm_t_before << " vs "
               << ref.norm_t_before << "; ";
          if (inc.norm_t_after != ref.norm_t_after)
            os << "norm_t_after " << inc.norm_t_after << " vs "
               << ref.norm_t_after << "; ";
          if (inc.plan.transfers.size() != ref.plan.transfers.size()) {
            os << "plan size " << inc.plan.transfers.size() << " vs "
               << ref.plan.transfers.size() << "; ";
          } else {
            for (std::size_t i = 0; i < ref.plan.transfers.size(); ++i) {
              const auto& a = inc.plan.transfers[i];
              const auto& b = ref.plan.transfers[i];
              if (a.layer != b.layer || a.src_stage != b.src_stage ||
                  a.dst_stage != b.dst_stage || a.bytes != b.bytes) {
                os << "plan[" << i << "] differs; ";
                break;
              }
            }
          }
          last_eval_diff = os.str();
          if (adopt) {
            surf.commit();
            cur = cand;
          } else {
            surf.rollback();
          }
          break;
        }
      }
    };
    const auto compare = [&](int) -> std::optional<std::string> {
      if (!last_eval_diff.empty()) return "evaluate(): " + last_eval_diff;
      if (surf.bottleneck_w() != surf.bottleneck_w_full_rescan()) {
        std::ostringstream os;
        os << "bottleneck_w " << surf.bottleneck_w() << " != rescan "
           << surf.bottleneck_w_full_rescan();
        return os.str();
      }
      if (surf.bottleneck_t() != surf.bottleneck_t_full_rescan()) {
        std::ostringstream os;
        os << "bottleneck_t " << surf.bottleneck_t() << " != rescan "
           << surf.bottleneck_t_full_rescan();
        return os.str();
      }
      // The cached per-stage sums must be the exact stage_loads values.
      const auto ref_w = cur.stage_loads(w);
      const auto got_w = surf.stage_loads_w();
      for (std::size_t s = 0; s < ref_w.size(); ++s) {
        if (got_w[s] != ref_w[s]) {
          std::ostringstream os;
          os << "sum_w[" << s << "] " << got_w[s] << " != " << ref_w[s];
          return os.str();
        }
      }
      return std::nullopt;
    };
    const auto r = testing::diff_check(seed, 1'000, perturb, compare,
                                       [&] { return dump_surface(surf); });
    EXPECT_TRUE(r.ok) << r.report;
  }
}

// ---------------------------------------------------------------------------
// Rebalancer: the incremental dispatch vs the full-rescan reference on the
// same evolving profile stream — every decision and every priced number.

TEST(RebalancerDifferential, IncrementalMatchesFullRescanOverStream) {
  for (const auto algorithm :
       {balance::Algorithm::Partition, balance::Algorithm::Diffusion}) {
    for (const bool heterogeneous : {false, true}) {
      balance::RebalanceConfig cfg;
      cfg.algorithm = algorithm;
      cfg.by = balance::BalanceBy::Time;
      cfg.min_bottleneck_gain = 0.02;
      cfg.payoff_window_iters = 10.0;
      const int stages = 8;
      if (heterogeneous) {
        cfg.capacities.assign(stages, 1.0);
        for (int s = 0; s < stages; s += 2) {
          cfg.capacities[static_cast<std::size_t>(s)] = 0.5;
        }
        cfg.stage_to_rank.resize(stages);
        for (int s = 0; s < stages; ++s) {
          cfg.stage_to_rank[static_cast<std::size_t>(s)] = stages - 1 - s;
        }
      }
      cfg.incremental = true;
      const balance::Rebalancer inc(cfg, comm::CostModel{});
      cfg.incremental = false;
      const balance::Rebalancer ref(cfg, comm::CostModel{});

      std::mt19937_64 rng(0xd1f0 + (heterogeneous ? 1 : 0) +
                          (algorithm == balance::Algorithm::Diffusion ? 2
                                                                      : 0));
      const std::size_t layers = 32;
      balance::LayerProfile prof;
      prof.time_s.assign(layers, 1.0);
      prof.memory_bytes.assign(layers, 1e6);
      prof.params.assign(layers, 100.0);
      StageMap cur_inc = StageMap::uniform(layers, stages);
      StageMap cur_ref = cur_inc;
      for (int iter = 0; iter < 60; ++iter) {
        // Random-walk the profile: a few layers drift each step, like a
        // dynamism engine shifting load.
        const int n = 1 + static_cast<int>(rng() % 5);
        for (int i = 0; i < n; ++i) {
          const std::size_t l = rng() % layers;
          prof.time_s[l] = 0.1 + static_cast<double>(rng() % 200) * 0.01;
          prof.memory_bytes[l] = static_cast<double>(1 + rng() % 64) * 1e6;
        }
        const auto a = inc.rebalance(prof, cur_inc);
        const auto b = ref.rebalance_full_rescan(prof, cur_ref);
        ASSERT_EQ(a.map, b.map) << "iter " << iter;
        ASSERT_EQ(a.decision, b.decision) << "iter " << iter;
        ASSERT_EQ(a.imbalance_before, b.imbalance_before) << "iter " << iter;
        ASSERT_EQ(a.imbalance_after, b.imbalance_after) << "iter " << iter;
        ASSERT_EQ(a.projected_gain_s, b.projected_gain_s) << "iter " << iter;
        ASSERT_EQ(a.exposed_cost_s, b.exposed_cost_s) << "iter " << iter;
        ASSERT_EQ(a.candidate_bytes, b.candidate_bytes) << "iter " << iter;
        ASSERT_EQ(a.overhead.profile_s, b.overhead.profile_s);
        ASSERT_EQ(a.overhead.migrate_s, b.overhead.migrate_s);
        // decide_s is measured wall clock — the one field that may differ.
        ASSERT_EQ(a.migration.transfers.size(), b.migration.transfers.size());
        for (std::size_t i = 0; i < a.migration.transfers.size(); ++i) {
          ASSERT_EQ(a.migration.transfers[i].layer,
                    b.migration.transfers[i].layer);
          ASSERT_EQ(a.migration.transfers[i].src_stage,
                    b.migration.transfers[i].src_stage);
          ASSERT_EQ(a.migration.transfers[i].dst_stage,
                    b.migration.transfers[i].dst_stage);
          ASSERT_EQ(a.migration.transfers[i].bytes,
                    b.migration.transfers[i].bytes);
        }
        cur_inc = a.map;
        cur_ref = b.map;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deployment: memoized link/group/capacity lookups return identical
// objects, and the resolver-call counter stays flat on repeats.

TEST(DeploymentCache, MemoizedLookupsMatchAndResolverCallsStayFlat) {
  const auto dep = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_dgx_a100(2), 8);
  const auto base = dep.cache_stats();

  // First pass: misses populate the cache; values must equal the
  // re-derivation twin exactly.
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      const auto lp = dep.link(a, b);
      const auto ref = dep.link_full_rescan(a, b);
      ASSERT_EQ(lp.alpha_s, ref.alpha_s) << a << "," << b;
      ASSERT_EQ(lp.beta_bytes_s, ref.beta_bytes_s) << a << "," << b;
    }
  }
  const auto caps = dep.stage_capacities();
  EXPECT_EQ(caps, dep.stage_capacities_full_rescan());
  const auto grp = dep.group(dep.stage_to_rank());
  const auto grp_ref = dep.group_full_rescan(dep.stage_to_rank());
  EXPECT_EQ(grp.node_sizes, grp_ref.node_sizes);
  EXPECT_EQ(grp.intra.alpha_s, grp_ref.intra.alpha_s);
  EXPECT_EQ(grp.intra.beta_bytes_s, grp_ref.intra.beta_bytes_s);
  EXPECT_EQ(grp.inter.alpha_s, grp_ref.inter.alpha_s);
  EXPECT_EQ(grp.inter.beta_bytes_s, grp_ref.inter.beta_bytes_s);

  const auto after_first = dep.cache_stats();
  EXPECT_GT(after_first.resolver_calls, base.resolver_calls);

  // Second pass over the identical queries: lookups rise, resolver flat —
  // the regression this hook exists to catch.
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      const auto lp = dep.link(a, b);
      const auto ref = dep.link_full_rescan(a, b);
      ASSERT_EQ(lp.alpha_s, ref.alpha_s);
      ASSERT_EQ(lp.beta_bytes_s, ref.beta_bytes_s);
    }
  }
  (void)dep.stage_capacities();
  (void)dep.group(dep.stage_to_rank());
  const auto after_second = dep.cache_stats();
  EXPECT_EQ(after_second.resolver_calls, after_first.resolver_calls)
      << "repeated identical lookups re-ran the resolver";
  EXPECT_GT(after_second.lookups, after_first.lookups);
}

TEST(DeploymentCache, CopiesShareTheCacheViewsGetFresh) {
  const auto dep = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_dgx_a100(1), 4);
  (void)dep.link(0, 3);
  const auto warm = dep.cache_stats();
  const auto copy = dep;  // shares the cache
  (void)copy.link(0, 3);
  EXPECT_EQ(copy.cache_stats().resolver_calls, warm.resolver_calls);
  const auto view = dep.prefix(2);  // fresh cache: different placement
  EXPECT_EQ(view.cache_stats().lookups, 0u);
}

// ---------------------------------------------------------------------------
// CostBuilder: memoized layer pricing vs full re-evaluation under random
// state churn.

TEST(CostBuilderMemo, MatchesFullRescanUnderStateChurn) {
  const auto model = model::make_gpt({.num_blocks = 12,
                                      .include_embedding = false,
                                      .include_lm_head = false});
  const pipeline::CostBuilder builder(model, model::LayerCostModel{},
                                      comm::CostModel{}, {});
  std::vector<model::LayerState> states(model.num_layers());
  std::mt19937_64 rng(0xcafe);
  StageMap map = StageMap::uniform(model.num_layers(), 4);
  for (int iter = 0; iter < 200; ++iter) {
    // Perturb a few layers' dynamic state; most layers are cache hits.
    const int n = static_cast<int>(rng() % 3);
    for (int i = 0; i < n; ++i) {
      auto& st = states[rng() % states.size()];
      st.weight_density = 0.25 + static_cast<double>(rng() % 4) * 0.25;
      st.frozen = rng() % 4 == 0;
      st.token_fraction = 0.5 + static_cast<double>(rng() % 3) * 0.25;
      st.compute_scale = 0.5 + static_cast<double>(rng() % 4) * 0.5;
    }
    if (rng() % 8 == 0) {  // residency changes with the map
      map = random_map(rng, model.num_layers(),
                       2 + static_cast<int>(rng() % 6));
    }
    const auto t_inc = builder.layer_times(states);
    const auto t_ref = builder.layer_times_full_rescan(states);
    ASSERT_EQ(t_inc.size(), t_ref.size());
    for (std::size_t l = 0; l < t_ref.size(); ++l) {
      ASSERT_EQ(t_inc[l].forward_s, t_ref[l].forward_s) << "layer " << l;
      ASSERT_EQ(t_inc[l].backward_input_s, t_ref[l].backward_input_s);
      ASSERT_EQ(t_inc[l].backward_weight_s, t_ref[l].backward_weight_s);
    }
    const auto m_inc = builder.layer_memory_bytes(states, map);
    const auto m_ref = builder.layer_memory_bytes_full_rescan(states, map);
    ASSERT_EQ(m_inc, m_ref) << "iter " << iter;
  }
}

// ---------------------------------------------------------------------------
// Session-level golden proof: identical telemetry bytes with the
// incremental path on and off.

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(SessionGolden, IncrementalRunEmitsByteIdenticalTelemetry) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::path(::testing::TempDir()) / "incremental_golden";
  fs::remove_all(base);
  const auto run = [&](bool incremental, const fs::path& dir) {
    Options opt;
    opt.session.pipeline_stages = 8;
    opt.session.micro_batch = 2;
    opt.session.num_microbatches = 16;
    opt.session.iterations = 200;
    opt.session.sim_stride = 10;
    opt.session.rebalance_interval = 1;
    opt.session.mode = runtime::BalancingMode::DynMo;
    opt.session.algorithm = balance::Algorithm::Diffusion;
    opt.session.payoff_window_iters = 20.0;
    opt.session.telemetry.dir = dir.string();
    opt.session.telemetry.deterministic = true;
    opt.session.incremental_decisions = incremental;
    Session session(model::make_gpt({.num_blocks = 16,
                                     .include_embedding = false,
                                     .include_lm_head = false}),
                    UseCase::SparseAttention, opt);
    (void)session.run();
  };
  run(true, base / "incremental");
  run(false, base / "rescan");

  std::size_t compared = 0;
  for (const auto& e : fs::directory_iterator(base / "incremental")) {
    const auto name = e.path().filename();
    const auto twin = base / "rescan" / name;
    ASSERT_TRUE(fs::exists(twin)) << name << " missing from the rescan run";
    EXPECT_EQ(slurp(e.path()), slurp(twin))
        << name << " differs between decision paths";
    ++compared;
  }
  EXPECT_GT(compared, 2u);  // catalog + at least some tables
  fs::remove_all(base);
}

}  // namespace
}  // namespace dynmo
