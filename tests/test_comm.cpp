// Unit tests for the in-process communication substrate: P2P semantics,
// collectives, communicator split (the ncclCommSplit analogue), context
// isolation, and the alpha-beta cost model.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"

namespace dynmo::comm {
namespace {

/// Run fn(rank, comm) on one thread per rank and join.
void run_ranks(World& world, int n,
               const std::function<void(int, Communicator&)>& fn) {
  std::vector<std::thread> ts;
  for (int r = 0; r < n; ++r) {
    ts.emplace_back([&world, r, &fn] {
      Communicator c = world.world_comm(r);
      fn(r, c);
    });
  }
  for (auto& t : ts) t.join();
}

TEST(Packer, RoundTripsValuesAndVectors) {
  Packer p;
  p.put(42);
  p.put(3.5);
  p.put_vector(std::vector<int>{1, 2, 3});
  const auto buf = p.take();
  Unpacker u(buf);
  EXPECT_EQ(u.get<int>(), 42);
  EXPECT_DOUBLE_EQ(u.get<double>(), 3.5);
  EXPECT_EQ(u.get_vector<int>(), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(u.exhausted());
}

TEST(Packer, UnpackerThrowsOnOverrun) {
  Packer p;
  p.put<std::uint8_t>(1);
  const auto buf = p.take();
  Unpacker u(buf);
  (void)u.get<std::uint8_t>();
  EXPECT_THROW((void)u.get<int>(), Error);
}

TEST(Comm, PointToPoint) {
  World world(2);
  run_ranks(world, 2, [](int rank, Communicator& c) {
    if (rank == 0) {
      c.send_value(1, 5, 1234);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 5), 1234);
    }
  });
}

TEST(Comm, TagMatching) {
  World world(2);
  run_ranks(world, 2, [](int rank, Communicator& c) {
    if (rank == 0) {
      c.send_value(1, /*tag=*/10, 100);
      c.send_value(1, /*tag=*/20, 200);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(c.recv_value<int>(0, 20), 200);
      EXPECT_EQ(c.recv_value<int>(0, 10), 100);
    }
  });
}

TEST(Comm, FifoPerSourceAndTag) {
  World world(2);
  run_ranks(world, 2, [](int rank, Communicator& c) {
    constexpr int kN = 50;
    if (rank == 0) {
      for (int i = 0; i < kN; ++i) c.send_value(1, 7, i);
    } else {
      for (int i = 0; i < kN; ++i) EXPECT_EQ(c.recv_value<int>(0, 7), i);
    }
  });
}

TEST(Comm, WildcardSource) {
  World world(3);
  run_ranks(world, 3, [](int rank, Communicator& c) {
    if (rank != 0) {
      c.send_value(0, 1, rank);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        const Message m = c.recv(kAnySource, 1);
        Unpacker u(m.payload);
        sum += u.get<int>();
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

class CommCollectives : public ::testing::TestWithParam<int> {};

TEST_P(CommCollectives, Barrier) {
  const int n = GetParam();
  World world(n);
  std::atomic<int> arrived{0};
  run_ranks(world, n, [&](int, Communicator& c) {
    arrived.fetch_add(1);
    c.barrier();
    // After the barrier, every rank must have arrived.
    EXPECT_EQ(arrived.load(), n);
  });
}

TEST_P(CommCollectives, Broadcast) {
  const int n = GetParam();
  World world(n);
  for (int root = 0; root < n; ++root) {
    run_ranks(world, n, [&](int rank, Communicator& c) {
      Packer p;
      if (rank == root) p.put(root * 100 + 7);
      const auto out = c.broadcast(rank == root ? p.take()
                                                : std::vector<std::byte>{},
                                   root);
      Unpacker u(out);
      EXPECT_EQ(u.get<int>(), root * 100 + 7);
    });
  }
}

TEST_P(CommCollectives, GatherScatter) {
  const int n = GetParam();
  World world(n);
  run_ranks(world, n, [&](int rank, Communicator& c) {
    Packer p;
    p.put(rank * rank);
    auto gathered = c.gather(p.take(), 0);
    if (rank == 0) {
      ASSERT_EQ(static_cast<int>(gathered.size()), n);
      std::vector<std::vector<std::byte>> redistribute;
      for (int r = 0; r < n; ++r) {
        Unpacker u(gathered[static_cast<std::size_t>(r)]);
        EXPECT_EQ(u.get<int>(), r * r);
        Packer back;
        back.put(r + 1000);
        redistribute.push_back(back.take());
      }
      auto mine = c.scatter(std::move(redistribute), 0);
      Unpacker u(mine);
      EXPECT_EQ(u.get<int>(), 1000);
    } else {
      auto mine = c.scatter({}, 0);
      Unpacker u(mine);
      EXPECT_EQ(u.get<int>(), rank + 1000);
    }
  });
}

TEST_P(CommCollectives, AllgatherAndAllreduce) {
  const int n = GetParam();
  World world(n);
  run_ranks(world, n, [&](int rank, Communicator& c) {
    const auto all = c.allgather_doubles({static_cast<double>(rank), 1.0});
    ASSERT_EQ(static_cast<int>(all.size()), n);
    for (int r = 0; r < n; ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)][0], r);
    }
    const auto sum = c.allreduce_sum({static_cast<double>(rank), 2.0});
    EXPECT_DOUBLE_EQ(sum[0], n * (n - 1) / 2.0);
    EXPECT_DOUBLE_EQ(sum[1], 2.0 * n);
  });
}

TEST_P(CommCollectives, Alltoallv) {
  const int n = GetParam();
  World world(n);
  run_ranks(world, n, [&](int rank, Communicator& c) {
    std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      Packer p;
      // Variable sizes: rank sends (rank*10+r) repeated r+1 times.
      for (int k = 0; k <= r; ++k) p.put(rank * 10 + r);
      out[static_cast<std::size_t>(r)] = p.take();
    }
    const auto in = c.alltoallv(std::move(out));
    for (int r = 0; r < n; ++r) {
      Unpacker u(in[static_cast<std::size_t>(r)]);
      for (int k = 0; k <= rank; ++k) EXPECT_EQ(u.get<int>(), r * 10 + rank);
      EXPECT_TRUE(u.exhausted());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommCollectives,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(CommSplit, PartitionsByColor) {
  World world(6);
  run_ranks(world, 6, [](int rank, Communicator& c) {
    const int color = rank % 2;
    auto sub = c.split(color, rank);
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->size(), 3);
    EXPECT_EQ(sub->rank(), rank / 2);
    // Sum ranks within the new communicator: even colors sum 0+2+4.
    const auto sum = sub->allreduce_sum({static_cast<double>(rank)});
    EXPECT_DOUBLE_EQ(sum[0], color == 0 ? 6.0 : 9.0);
  });
}

TEST(CommSplit, NoColorGetsNothing) {
  World world(4);
  run_ranks(world, 4, [](int rank, Communicator& c) {
    auto sub = c.split(rank == 3 ? -1 : 0, rank);
    if (rank == 3) {
      EXPECT_FALSE(sub.has_value());
    } else {
      ASSERT_TRUE(sub.has_value());
      EXPECT_EQ(sub->size(), 3);
      sub->barrier();  // must not deadlock without rank 3
    }
  });
}

TEST(CommSplit, KeyOrdersRanks) {
  World world(4);
  run_ranks(world, 4, [](int rank, Communicator& c) {
    // Reverse order via key.
    auto sub = c.split(0, -rank);
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->rank(), 3 - rank);
  });
}

TEST(CommSplit, ContextIsolation) {
  World world(2);
  run_ranks(world, 2, [](int rank, Communicator& c) {
    auto sub = c.split(0, rank);
    ASSERT_TRUE(sub.has_value());
    if (rank == 0) {
      // Same tag on both communicators: receivers must not cross-match.
      c.send_value(1, 99, 111);
      sub->send_value(1, 99, 222);
    } else {
      EXPECT_EQ(sub->recv_value<int>(0, 99), 222);
      EXPECT_EQ(c.recv_value<int>(0, 99), 111);
    }
  });
}

TEST(CommSplit, DupPreservesOrder) {
  World world(3);
  run_ranks(world, 3, [](int rank, Communicator& c) {
    auto d = c.dup();
    EXPECT_EQ(d.rank(), rank);
    EXPECT_EQ(d.size(), 3);
    EXPECT_NE(d.context(), c.context());
  });
}

TEST(Comm, ShutdownUnblocksReceivers) {
  World world(2);
  std::thread receiver([&world] {
    Communicator c = world.world_comm(1);
    EXPECT_THROW((void)c.recv(0, 1), CommError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  world.shutdown();
  receiver.join();
}

TEST(Comm, TrafficAccounting) {
  World world(2);
  run_ranks(world, 2, [](int rank, Communicator& c) {
    if (rank == 0) c.send_vector<double>(1, 1, {1.0, 2.0, 3.0});
    if (rank == 1) (void)c.recv(0, 1);
  });
  EXPECT_GE(world.bytes_sent(), 3 * sizeof(double));
  EXPECT_GE(world.messages_sent(), 1u);
}

TEST(CostModel, TiersByNode) {
  CostModel m;  // 4 GPUs per node
  EXPECT_EQ(m.tier(0, 1), LinkTier::NvLink);
  EXPECT_EQ(m.tier(0, 3), LinkTier::NvLink);
  EXPECT_EQ(m.tier(3, 4), LinkTier::InfiniBand);
  EXPECT_GT(m.p2p_time(3, 4, 1 << 20), m.p2p_time(0, 1, 1 << 20));
}

TEST(CostModel, CollectiveCostsScale) {
  CostModel m;
  EXPECT_EQ(m.allreduce_time(1, 1 << 20, true), 0.0);
  EXPECT_GT(m.allreduce_time(8, 1 << 20, true),
            m.allreduce_time(8, 1 << 10, true));
  EXPECT_GT(m.alltoall_time(16, 1 << 20, true),
            m.alltoall_time(4, 1 << 20, true));
  EXPECT_GT(m.broadcast_time(16, 1 << 20, false),
            m.broadcast_time(2, 1 << 20, false));
}

TEST(CostModel, NodeResolverOverridesGpusPerNode) {
  CostModel m;  // config says 4 GPUs per node...
  m.set_node_resolver([](int rank) { return rank / 8; });  // ...truth is 8
  EXPECT_EQ(m.node_of(7), 0);
  EXPECT_EQ(m.node_of(8), 1);
  EXPECT_EQ(m.tier(3, 4), LinkTier::NvLink);
  EXPECT_EQ(m.tier(7, 8), LinkTier::InfiniBand);
  const auto g = m.group(std::vector<int>{0, 5, 7, 8, 9});
  ASSERT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.node_sizes[0], 3);
  EXPECT_EQ(g.node_sizes[1], 2);
}

TEST(CostModel, GroupCollectivesReduceToFlatOnOneNode) {
  CostModel m;  // 4 GPUs per node
  const auto g = m.group(std::vector<int>{0, 1, 2, 3});
  ASSERT_EQ(g.num_nodes(), 1);
  EXPECT_EQ(g.total_ranks(), 4);
  const std::size_t bytes = 64u << 20;
  EXPECT_DOUBLE_EQ(m.allreduce_time(g, bytes),
                   m.allreduce_time(4, bytes, /*crosses_nodes=*/false));
  EXPECT_DOUBLE_EQ(m.broadcast_time(g, bytes),
                   m.broadcast_time(4, bytes, false));
  EXPECT_DOUBLE_EQ(m.alltoall_time(g, bytes),
                   m.alltoall_time(4, bytes, false));
}

TEST(CostModel, GroupCollectivesReduceToFlatOnSingletonNodes) {
  // One rank per node: there is no intra level, so the hierarchical
  // formulas must collapse to the flat cross-node ones.
  CostModel m;
  m.set_node_resolver([](int rank) { return rank; });
  const auto g = m.group(std::vector<int>{0, 1, 2, 3, 4, 5});
  ASSERT_EQ(g.num_nodes(), 6);
  const std::size_t bytes = 16u << 20;
  EXPECT_DOUBLE_EQ(m.allreduce_time(g, bytes),
                   m.allreduce_time(6, bytes, /*crosses_nodes=*/true));
  EXPECT_DOUBLE_EQ(m.broadcast_time(g, bytes),
                   m.broadcast_time(6, bytes, true));
  EXPECT_DOUBLE_EQ(m.alltoall_time(g, bytes),
                   m.alltoall_time(6, bytes, true));
}

TEST(CostModel, HierarchicalCollectivesBeatFlatAcrossNodes) {
  // 2..4 nodes of 4..8 members: the hierarchy keeps most traffic on
  // NVLink and ships only per-node shards / aggregates over the fabric, so
  // it must undercut pricing the whole collective at the InfiniBand tier.
  CostModel m;
  for (int nodes : {2, 3, 4}) {
    for (int per_node : {4, 8}) {
      RankGroup g;
      g.node_sizes.assign(static_cast<std::size_t>(nodes), per_node);
      g.intra = m.params(LinkTier::NvLink);
      g.inter = m.params(LinkTier::InfiniBand);
      const int n = nodes * per_node;
      const std::size_t bytes = 64u << 20;
      EXPECT_LT(m.allreduce_time(g, bytes), m.allreduce_time(n, bytes, true))
          << nodes << "x" << per_node;
      EXPECT_LT(m.broadcast_time(g, bytes), m.broadcast_time(n, bytes, true))
          << nodes << "x" << per_node;
      EXPECT_LT(m.alltoall_time(g, bytes), m.alltoall_time(n, bytes, true))
          << nodes << "x" << per_node;
    }
  }
}

TEST(CostModel, EmptyGroupIsFreeEverywhere) {
  // A stage can end up with no DP peers at all (dp = 1 slices); every
  // formula must return zero instead of dividing by an empty node list.
  CostModel m;
  const RankGroup g;  // no nodes, no ranks
  EXPECT_EQ(g.total_ranks(), 0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.max_node_size(), 0);
  EXPECT_EQ(g.min_node_size(), 0);
  EXPECT_DOUBLE_EQ(m.allreduce_time(g, 1u << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.broadcast_time(g, 1u << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.alltoall_time(g, 1u << 20), 0.0);
  const auto split = allreduce_bytes(g, 1u << 20);
  EXPECT_DOUBLE_EQ(split.intra_node, 0.0);
  EXPECT_DOUBLE_EQ(split.inter_node, 0.0);
}

TEST(CostModel, SingleRankGroupIsFree) {
  CostModel m;
  const auto g = m.group(std::vector<int>{5});
  EXPECT_EQ(g.total_ranks(), 1);
  EXPECT_EQ(g.num_nodes(), 1);
  EXPECT_DOUBLE_EQ(m.allreduce_time(g, 1u << 24), 0.0);
  EXPECT_DOUBLE_EQ(m.broadcast_time(g, 1u << 24), 0.0);
  EXPECT_DOUBLE_EQ(m.alltoall_time(g, 1u << 24), 0.0);
  const auto split = allreduce_bytes(g, 1u << 24);
  EXPECT_DOUBLE_EQ(split.intra_node + split.inter_node, 0.0);
}

TEST(CostModel, AllreduceBytesMatchTheFlatRingInDegenerateGroups) {
  // One node of n: all wire bytes are intra and equal the flat ring's
  // 2(n-1)·bytes.  All-singleton nodes: the same total, all inter.
  CostModel m;
  const std::size_t bytes = 32u << 20;
  RankGroup one_node;
  one_node.node_sizes = {6};
  const auto intra_split = allreduce_bytes(one_node, bytes);
  EXPECT_DOUBLE_EQ(intra_split.intra_node,
                   2.0 * 5.0 * static_cast<double>(bytes));
  EXPECT_DOUBLE_EQ(intra_split.inter_node, 0.0);

  RankGroup singletons;
  singletons.node_sizes.assign(6, 1);
  const auto inter_split = allreduce_bytes(singletons, bytes);
  EXPECT_DOUBLE_EQ(inter_split.intra_node, 0.0);
  EXPECT_DOUBLE_EQ(inter_split.inter_node,
                   2.0 * 5.0 * static_cast<double>(bytes));
}

TEST(CostModel, HierarchicalCollectivesGateOnWorstNode) {
  // Non-uniform node sizes, same total ranks: the lone rank on its own
  // node carries a full shard / crosses the most fabric, so the skewed
  // grouping must cost more than the even one.
  CostModel m;
  RankGroup uneven;
  uneven.node_sizes = {7, 1};
  uneven.intra = m.params(LinkTier::NvLink);
  uneven.inter = m.params(LinkTier::InfiniBand);
  RankGroup even;
  even.node_sizes = {4, 4};
  even.intra = uneven.intra;
  even.inter = uneven.inter;
  const std::size_t bytes = 64u << 20;
  EXPECT_GT(m.allreduce_time(uneven, bytes), m.allreduce_time(even, bytes));
  EXPECT_GT(m.alltoall_time(uneven, bytes), m.alltoall_time(even, bytes));
}

}  // namespace
}  // namespace dynmo::comm
