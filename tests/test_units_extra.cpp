// Additional edge-case coverage: unit formatting extremes, histogram
// rendering, thread-pool structured parallelism, and logger levels.
#include <gtest/gtest.h>

#include <atomic>

#include "core/log.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "core/units.hpp"

namespace dynmo {
namespace {

TEST(UnitsExtra, FormatRateScales) {
  EXPECT_EQ(format_rate(5.0, "tok"), "5 tok/s");
  EXPECT_EQ(format_rate(5000.0, "tok"), "5k tok/s");
  EXPECT_EQ(format_rate(5e6, "tok"), "5M tok/s");
}

TEST(UnitsExtra, FormatSecondsExtremes) {
  EXPECT_EQ(format_seconds(1e-9), "1 ns");
  EXPECT_EQ(format_seconds(2.5e-6), "2.5 us");
  EXPECT_EQ(format_seconds(120.0), "120 s");
}

TEST(UnitsExtra, ConstantsConsistent) {
  EXPECT_DOUBLE_EQ(GiB, 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(TFLOPS, 1e12);
  EXPECT_DOUBLE_EQ(ms, 1e-3);
}

TEST(Histogram, RendersBinsAndCounts) {
  const std::vector<double> xs = {0, 0, 0, 1, 1, 2};
  const auto h = ascii_histogram(xs, 3, 10);
  EXPECT_NE(h.find("3"), std::string::npos);
  EXPECT_NE(h.find("#"), std::string::npos);
  EXPECT_EQ(ascii_histogram({}, 3, 10), "(empty)");
}

TEST(ThreadPoolExtra, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolExtra, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 1, [&](std::size_t lo, std::size_t hi) {
    sum.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPoolExtra, RepeatedUseIsStable) {
  // Regression guard for the completion-synchronization race: hammer the
  // pool with many short parallel_for calls from several caller threads.
  std::vector<std::thread> callers;
  std::atomic<long> total{0};
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&total] {
      for (int round = 0; round < 200; ++round) {
        std::atomic<long> local{0};
        ThreadPool::global().parallel_for(
            0, 64, [&](std::size_t lo, std::size_t hi) {
              local.fetch_add(static_cast<long>(hi - lo));
            });
        total.fetch_add(local.load());
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4L * 200 * 64);
}

TEST(LoggerExtra, LevelsGate) {
  auto& logger = Logger::instance();
  const auto prev = logger.level();
  logger.set_level(LogLevel::Error);
  EXPECT_FALSE(logger.enabled(LogLevel::Info));
  EXPECT_TRUE(logger.enabled(LogLevel::Error));
  logger.set_level(LogLevel::Trace);
  EXPECT_TRUE(logger.enabled(LogLevel::Debug));
  logger.set_level(prev);
}

}  // namespace
}  // namespace dynmo
