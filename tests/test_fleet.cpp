// Fleet arbiter (docs/FLEET.md): weighted max-min fairness, the
// deterministic event clock, the session stepping API the arbiter drives,
// and the full multi-tenant loop — admission to fair shares, priority
// preemption through the checkpoint-coordinated shrink path, and the
// fleet_decisions telemetry the verdicts leave behind.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "core/error.hpp"
#include "fleet/arbiter.hpp"
#include "fleet/clock.hpp"
#include "fleet/fairness.hpp"
#include "model/layer.hpp"
#include "runtime/session.hpp"
#include "telemetry/trace_reader.hpp"

namespace dynmo {
namespace {

// ---------------------------------------------------------------- fairness

TEST(FleetFairness, SplitsEvenlyWithEqualWeights) {
  const fleet::ShareClaim c{1.0, 2, 16};
  const std::vector<fleet::ShareClaim> claims = {c, c};
  const auto s = fleet::weighted_max_min_shares(16, claims);
  EXPECT_EQ(s[0], 8);
  EXPECT_EQ(s[1], 8);
}

TEST(FleetFairness, WeightsTiltTheWaterFilling) {
  const std::vector<fleet::ShareClaim> claims = {{2.0, 0, 12}, {1.0, 0, 12}};
  const auto s = fleet::weighted_max_min_shares(12, claims);
  EXPECT_EQ(s[0], 8);
  EXPECT_EQ(s[1], 4);
}

TEST(FleetFairness, CapsRedistributeAndLeftoverStaysFree) {
  // Job 0 caps at 3; job 1 absorbs the rest of its cap; the remainder
  // (everyone capped) stays free.
  const std::vector<fleet::ShareClaim> claims = {{1.0, 0, 3}, {1.0, 0, 5}};
  const auto s = fleet::weighted_max_min_shares(16, claims);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s[1], 5);
}

TEST(FleetFairness, FloorsGrantedFirstAndMustFit) {
  const std::vector<fleet::ShareClaim> claims = {{1.0, 6, 8}, {1.0, 1, 8}};
  const auto s = fleet::weighted_max_min_shares(8, claims);
  // Floors 6+1, then the last GPU water-fills to the lower share.
  EXPECT_EQ(s[0], 6);
  EXPECT_EQ(s[1], 2);
  const std::vector<fleet::ShareClaim> over = {{1.0, 6, 8}, {1.0, 6, 8}};
  EXPECT_THROW((void)fleet::weighted_max_min_shares(8, over), Error);
}

TEST(FleetFairness, TiesBreakToTheLowestIndex) {
  const std::vector<fleet::ShareClaim> claims = {{1.0, 0, 8}, {1.0, 0, 8}};
  const auto s = fleet::weighted_max_min_shares(3, claims);
  EXPECT_EQ(s[0], 2);  // the odd GPU lands on the first claim
  EXPECT_EQ(s[1], 1);
}

// ------------------------------------------------------------------- clock

TEST(FleetClock, OrdersByTimeThenInsertion) {
  fleet::EventClock clock;
  clock.push(5.0, 0);
  clock.push(1.0, 1);
  clock.push(5.0, 2);  // same instant as job 0, pushed later
  EXPECT_EQ(clock.pop().job, 1);
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
  EXPECT_EQ(clock.pop().job, 0);
  EXPECT_EQ(clock.pop().job, 2);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  EXPECT_TRUE(clock.empty());
  EXPECT_THROW(clock.push(4.0, 3), Error);  // scheduling into the past
  EXPECT_THROW((void)clock.pop(), Error);
}

// ------------------------------------------------------- session stepping

model::ModelDesc fleet_model(int blocks) {
  return model::make_gpt({.num_blocks = static_cast<std::size_t>(blocks),
                          .include_embedding = false,
                          .include_lm_head = false});
}

runtime::SessionConfig stepping_config() {
  runtime::SessionConfig cfg;
  cfg.pipeline_stages = 8;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 8;
  cfg.iterations = 400;
  cfg.sim_stride = 10;
  cfg.rebalance_interval = 50;
  cfg.mode = runtime::BalancingMode::DynMo;
  cfg.algorithm = balance::Algorithm::Partition;
  return cfg;
}

TEST(FleetSession, RunEqualsStartStepFinish) {
  const auto m = fleet_model(24);
  const auto cfg = stepping_config();

  runtime::TrainingSession whole(m, cfg, nullptr);
  const auto a = whole.run();

  runtime::TrainingSession stepped(m, cfg, nullptr);
  EXPECT_FALSE(stepped.started());
  stepped.start();
  EXPECT_TRUE(stepped.started());
  int steps = 0;
  while (!stepped.done()) {
    EXPECT_EQ(stepped.current_iter(), steps * cfg.sim_stride);
    EXPECT_GT(stepped.step(), 0.0);
    ++steps;
  }
  EXPECT_EQ(steps, 40);  // 400 iterations at stride 10
  const auto b = stepped.finish();

  // The loop was moved, not reinterpreted: every modeled quantity and
  // decision matches exactly.  Totals carry the *measured* balancer
  // decision wall-clock (overhead is charged from the machine clock, so
  // no two runs agree to the last bit) — those get a tight tolerance.
  EXPECT_NEAR(a.total_time_s, b.total_time_s, 1e-3 * a.total_time_s);
  EXPECT_NEAR(a.tokens_per_sec, b.tokens_per_sec, 1e-3 * a.tokens_per_sec);
  EXPECT_DOUBLE_EQ(a.avg_idleness, b.avg_idleness);
  EXPECT_DOUBLE_EQ(a.avg_bubble_ratio, b.avg_bubble_ratio);
  EXPECT_DOUBLE_EQ(a.peak_stage_memory, b.peak_stage_memory);
  EXPECT_EQ(a.rebalance_count, b.rebalance_count);
  EXPECT_EQ(a.maps_accepted, b.maps_accepted);
  EXPECT_EQ(a.maps_rejected_bottleneck, b.maps_rejected_bottleneck);
  EXPECT_EQ(a.maps_rejected_payoff, b.maps_rejected_payoff);
  ASSERT_EQ(a.final_map.num_stages(), b.final_map.num_stages());
  for (int s = 0; s < a.final_map.num_stages(); ++s) {
    EXPECT_EQ(a.final_map.stage_begin(s), b.final_map.stage_begin(s));
  }
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].iter, b.samples[i].iter);
    EXPECT_EQ(a.samples[i].active_workers, b.samples[i].active_workers);
    EXPECT_EQ(a.samples[i].rebalanced, b.samples[i].rebalanced);
    EXPECT_NEAR(a.samples[i].time_s, b.samples[i].time_s,
                1e-3 * a.samples[i].time_s);
  }
}

TEST(FleetSession, StartBelowCeilingRequiresElastic) {
  const auto m = fleet_model(24);
  auto cfg = stepping_config();
  cfg.initial_active_workers = 4;  // below the 8-stage ceiling, no elastic
  EXPECT_THROW((void)runtime::TrainingSession(m, cfg, nullptr), Error);
  cfg.initial_active_workers = 9;  // above the ceiling
  EXPECT_THROW((void)runtime::TrainingSession(m, cfg, nullptr), Error);
}

TEST(FleetSession, StepAndFinishGuardTheLifecycle) {
  const auto m = fleet_model(24);
  runtime::TrainingSession s(m, stepping_config(), nullptr);
  EXPECT_THROW((void)s.step(), Error);
  EXPECT_THROW((void)s.finish(), Error);
  s.start();
  EXPECT_THROW(s.start(), Error);
  EXPECT_THROW((void)s.finish(), Error);  // before done()
  EXPECT_THROW(s.request_shrink(4), Error);  // elastic disabled
}

// ------------------------------------------------------------ the arbiter

/// A fleet job over a small GPT: `max_gpus` pipeline stages, elastic
/// lifecycle wired to the arbiter, fast restart path so short tests can
/// afford transitions.
fleet::JobSpec make_job(const std::string& name, int priority, double weight,
                        int min_gpus, int max_gpus, double arrival_s,
                        std::int64_t iterations, std::uint64_t seed) {
  fleet::JobSpec spec;
  spec.name = name;
  spec.priority = priority;
  spec.weight = weight;
  spec.min_gpus = min_gpus;
  spec.max_gpus = max_gpus;
  spec.arrival_s = arrival_s;
  // The mutable capture parks the owning model handle in the closure; the
  // arbiter keeps the factory alive until the job's session is destroyed.
  spec.factory = [name, min_gpus, max_gpus, iterations, seed,
                  model = std::shared_ptr<model::ModelDesc>()](
                     int initial, repack::ControlPlane* cluster) mutable {
    model = std::make_shared<model::ModelDesc>(fleet_model(3 * max_gpus));
    runtime::SessionConfig cfg;
    cfg.pipeline_stages = max_gpus;
    cfg.micro_batch = 2;
    cfg.num_microbatches = 8;
    cfg.iterations = iterations;
    cfg.sim_stride = 10;
    cfg.rebalance_interval = 50;
    cfg.mode = runtime::BalancingMode::DynMo;
    cfg.algorithm = balance::Algorithm::Partition;
    cfg.seed = seed;
    cfg.initial_active_workers = initial;
    cfg.elastic.enabled = true;
    cfg.elastic.interval = 100;
    cfg.elastic.min_workers = min_gpus;
    cfg.elastic.cluster = cluster;
    cfg.elastic.pod = name;
    cfg.elastic.restart_alpha_s = 0.5;
    cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
    return std::make_unique<runtime::TrainingSession>(*model, cfg, nullptr);
  };
  return spec;
}

TEST(FleetArbiter, AdmitsWithinCapacityAndRunsToCompletion) {
  fleet::ArbiterConfig cfg;
  cfg.total_gpus = 8;
  cfg.payoff_window_iters = 0.0;  // pricing gates off: capacity rules only
  fleet::Arbiter arbiter(cfg);
  arbiter.submit(make_job("job-a", 0, 1.0, 2, 4, 0.0, 200, 1));
  arbiter.submit(make_job("job-b", 0, 1.0, 2, 4, 0.0, 200, 2));
  const auto r = arbiter.run();

  EXPECT_EQ(r.admits, 2);
  EXPECT_EQ(r.preemptions, 0);  // both ceilings fit side by side
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_GT(r.busy_gpu_s, 0.0);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0);
  EXPECT_GT(r.aggregate_tokens_per_sec, 0.0);
  ASSERT_EQ(r.jobs.size(), 2u);
  for (const auto& out : r.jobs) {
    EXPECT_EQ(out.admitted_gpus, 4);  // full ceiling: the pool had room
    EXPECT_GT(out.result.tokens_per_sec, 0.0);
    EXPECT_EQ(out.result.forced_shrinks, 0);
    EXPECT_GE(out.finished_s, out.admitted_s);
  }
  EXPECT_EQ(arbiter.free_gpus(), 8);  // everything returned to the pool
  // admit + finish verdicts at minimum, in fleet-clock order.
  EXPECT_GE(r.decisions.size(), 4u);
  for (std::size_t i = 1; i < r.decisions.size(); ++i) {
    EXPECT_LE(r.decisions[i - 1].time_s, r.decisions[i].time_s);
  }
}

TEST(FleetArbiter, HigherPriorityArrivalPreemptsByCheckpoint) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dynmo_fleet_trace")
          .string();
  std::filesystem::remove_all(dir);

  fleet::ArbiterConfig cfg;
  cfg.total_gpus = 8;
  cfg.payoff_window_iters = 1e6;  // generous: the preemption must price in
  cfg.telemetry.dir = dir;
  fleet::Arbiter arbiter(cfg);
  // The low-priority job grabs the whole pool at t=0; the high-priority
  // one arrives mid-run needing 4 GPUs it can only get by force.
  arbiter.submit(make_job("low", 0, 1.0, 2, 8, 0.0, 800, 3));
  arbiter.submit(make_job("high", 5, 1.0, 4, 4, 1.0, 200, 4));
  const auto r = arbiter.run();

  EXPECT_EQ(r.admits, 2);
  EXPECT_GE(r.preemptions, 1);
  ASSERT_EQ(r.jobs.size(), 2u);
  const auto& low = r.jobs[0];
  const auto& high = r.jobs[1];
  EXPECT_EQ(low.admitted_gpus, 8);
  EXPECT_GE(low.preemptions, 1);
  EXPECT_GE(low.result.forced_shrinks, 1);  // the checkpoint-restart path
  EXPECT_GT(low.result.restart_stall_s, 0.0);
  EXPECT_EQ(high.admitted_gpus, 4);
  EXPECT_GE(high.admitted_s, 1.0);
  EXPECT_EQ(high.result.forced_shrinks, 0);

  // The preempt verdict carries its pricing and both parties.
  bool saw_preempt = false;
  for (const auto& d : r.decisions) {
    if (d.kind != "preempt" || !d.accepted) continue;
    saw_preempt = true;
    EXPECT_EQ(d.job, "high");
    EXPECT_EQ(d.victim, "low");
    EXPECT_EQ(d.priority, 5);
    EXPECT_LT(d.gpus_after, d.gpus_before);
    EXPECT_GT(d.projected_gain_gpu_s, 0.0);
    EXPECT_GT(d.exposed_cost_gpu_s, 0.0);
    EXPECT_GE(d.projected_gain_gpu_s, d.exposed_cost_gpu_s);
  }
  EXPECT_TRUE(saw_preempt);

  // The same verdicts landed in the fleet_decisions telemetry table.
  telemetry::TraceReader reader(dir);
  EXPECT_EQ(reader.run().producer, "fleet");
  const auto rows = reader.fleet_decisions();
  ASSERT_EQ(rows.size(), r.decisions.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], r.decisions[i]);
  }
  std::filesystem::remove_all(dir);
}

TEST(FleetArbiter, EqualPriorityReclaimsOnlyDownToFairShare) {
  fleet::ArbiterConfig cfg;
  cfg.total_gpus = 8;
  cfg.payoff_window_iters = 0.0;
  fleet::Arbiter arbiter(cfg);
  // First job takes the whole pool; an equal-priority arrival reclaims
  // its fair half but cannot dig below it.
  arbiter.submit(make_job("first", 0, 1.0, 2, 8, 0.0, 800, 5));
  arbiter.submit(make_job("second", 0, 1.0, 2, 8, 1.0, 200, 6));
  const auto r = arbiter.run();

  EXPECT_EQ(r.admits, 2);
  EXPECT_GE(r.preemptions, 1);
  for (const auto& d : r.decisions) {
    if (d.kind == "preempt" && d.accepted) {
      EXPECT_EQ(d.victim, "first");
      EXPECT_GE(d.gpus_after, 4);  // never below the fair share
    }
  }
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_GE(r.jobs[1].admitted_gpus, 2);
  EXPECT_LE(r.jobs[1].admitted_gpus, 4);
}

TEST(FleetArbiter, RejectsMalformedAndUnknownPatches) {
  fleet::Arbiter arbiter({.total_gpus = 4});
  arbiter.submit(make_job("known", 0, 1.0, 1, 2, 0.0, 100, 7));
  EXPECT_EQ(arbiter.patch_pod({"", 1, 1}), 422);
  EXPECT_EQ(arbiter.patch_pod({"known", -1, -1}), 422);
  EXPECT_EQ(arbiter.patch_pod({"known", 2, 1}), 422);  // limit < request
  EXPECT_EQ(arbiter.patch_pod({"stranger", 2, 2}), 422);
  EXPECT_EQ(arbiter.free_gpus(), 4);
  EXPECT_EQ(arbiter.total_gpus(), 4);
}

TEST(FleetArbiter, ValidatesSpecsAtSubmit) {
  fleet::Arbiter arbiter({.total_gpus = 4});
  auto ok = make_job("a", 0, 1.0, 1, 2, 0.0, 100, 8);
  arbiter.submit(ok);
  EXPECT_THROW(arbiter.submit(make_job("a", 0, 1.0, 1, 2, 0.0, 100, 8)),
               Error);  // duplicate name
  EXPECT_THROW(arbiter.submit(make_job("b", 0, 1.0, 8, 8, 0.0, 100, 8)),
               Error);  // minimum exceeds the pool
  EXPECT_THROW(arbiter.submit(make_job("c", 0, 1.0, 3, 2, 0.0, 100, 8)),
               Error);  // min > max
  EXPECT_THROW(arbiter.submit(make_job("d", 0, -1.0, 1, 2, 0.0, 100, 8)),
               Error);  // non-positive weight
}

}  // namespace
}  // namespace dynmo
