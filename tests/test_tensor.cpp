// Unit tests for tensor/: dense ops, top-k selection, CSR compression and
// SpMM — the real kernels behind the threaded runtime and the distributed
// pruning path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "tensor/csr.hpp"
#include "tensor/tensor.hpp"

namespace dynmo::tensor {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(k, j);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

TEST(Tensor, ShapeAndFill) {
  Tensor t(3, 4, 2.5f);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.bytes(), 12 * sizeof(float));
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, RandomIsDeterministicPerSeed) {
  Rng a(5), b(5);
  const Tensor x = Tensor::random(4, 4, a);
  const Tensor y = Tensor::random(4, 4, b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x.data()[i], y.data()[i]);
  }
}

class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(42);
  const Tensor a = Tensor::random(static_cast<std::size_t>(m),
                                  static_cast<std::size_t>(k), rng);
  const Tensor b = Tensor::random(static_cast<std::size_t>(k),
                                  static_cast<std::size_t>(n), rng);
  const Tensor c = matmul(a, b);
  const Tensor ref = naive_matmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{8, 8, 8}, std::tuple{17, 5, 9},
                      std::tuple{64, 32, 16}, std::tuple{1, 64, 1}));

TEST(Tensor, MatmulShapeMismatchThrows) {
  Tensor a(2, 3), b(4, 2);
  EXPECT_THROW((void)matmul(a, b), Error);
}

TEST(Tensor, LinearAddsBias) {
  Tensor x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  Tensor w(2, 2);
  w.at(0, 0) = 1.0f;
  w.at(1, 1) = 1.0f;
  const std::vector<float> bias = {10.0f, 20.0f};
  const Tensor y = linear(x, w, bias);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 22.0f);
}

TEST(Tensor, ReluClampsNegatives) {
  Tensor t(1, 3);
  t.at(0, 0) = -1.0f;
  t.at(0, 1) = 0.0f;
  t.at(0, 2) = 2.0f;
  relu_inplace(t);
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 1), 0.0f);
  EXPECT_EQ(t.at(0, 2), 2.0f);
}

TEST(Tensor, FrobeniusNorm) {
  Tensor t(1, 2);
  t.at(0, 0) = 3.0f;
  t.at(0, 1) = 4.0f;
  EXPECT_NEAR(frobenius_norm(t), 5.0, 1e-9);
}

TEST(TopK, SelectsLargestMagnitudes) {
  const std::vector<float> xs = {0.1f, -5.0f, 2.0f, -0.5f, 3.0f};
  auto idx = topk_abs_indices(xs, 2);
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 4}));
}

TEST(TopK, ClampsToSize) {
  const std::vector<float> xs = {1.0f, 2.0f};
  EXPECT_EQ(topk_abs_indices(xs, 10).size(), 2u);
  EXPECT_TRUE(topk_abs_indices(xs, 0).empty());
}

TEST(TopK, KthAbsValue) {
  const std::vector<float> xs = {0.1f, -5.0f, 2.0f, -0.5f, 3.0f};
  EXPECT_FLOAT_EQ(kth_abs_value(xs, 1), 5.0f);
  EXPECT_FLOAT_EQ(kth_abs_value(xs, 3), 2.0f);
  EXPECT_FLOAT_EQ(kth_abs_value(xs, 5), 0.1f);
  EXPECT_THROW((void)kth_abs_value(xs, 6), Error);
}

TEST(Csr, RoundTripThreshold) {
  Rng rng(1);
  const Tensor dense = Tensor::random(10, 14, rng);
  const CsrMatrix csr = CsrMatrix::from_dense(dense, 0.5f);
  const Tensor back = csr.to_dense();
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      const float expect =
          std::abs(dense.at(r, c)) >= 0.5f ? dense.at(r, c) : 0.0f;
      EXPECT_EQ(back.at(r, c), expect);
    }
  }
}

TEST(Csr, DensityAndBytes) {
  Tensor dense(4, 4);
  dense.at(0, 0) = 1.0f;
  dense.at(3, 3) = -2.0f;
  const CsrMatrix csr = CsrMatrix::from_dense(dense, 0.1f);
  EXPECT_EQ(csr.nnz(), 2u);
  EXPECT_DOUBLE_EQ(csr.density(), 2.0 / 16.0);
  EXPECT_EQ(csr.bytes(),
            2 * sizeof(float) + 2 * sizeof(std::uint32_t) +
                5 * sizeof(std::uint32_t));
}

TEST(Csr, FromIndicesKeepsExactSet) {
  Rng rng(2);
  const Tensor dense = Tensor::random(6, 5, rng);
  const std::vector<std::uint32_t> keep = {0, 7, 14, 29};
  const CsrMatrix csr = CsrMatrix::from_dense_with_indices(dense, keep);
  EXPECT_EQ(csr.nnz(), keep.size());
  const Tensor back = csr.to_dense();
  for (std::size_t flat = 0; flat < dense.size(); ++flat) {
    const auto r = flat / 5;
    const auto c = flat % 5;
    const bool kept =
        std::find(keep.begin(), keep.end(), flat) != keep.end();
    EXPECT_EQ(back.at(r, c), kept ? dense.at(r, c) : 0.0f) << flat;
  }
}

class CsrSpmm : public ::testing::TestWithParam<float> {};

TEST_P(CsrSpmm, MatchesDenseMatmul) {
  Rng rng(3);
  const Tensor x = Tensor::random(7, 12, rng);
  const Tensor w = Tensor::random(12, 9, rng);
  const CsrMatrix sw = CsrMatrix::from_dense(w, GetParam());
  const Tensor ref = matmul(x, sw.to_dense());
  const Tensor y = sw.spmm_left(x);
  ASSERT_EQ(y.rows(), ref.rows());
  ASSERT_EQ(y.cols(), ref.cols());
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y.data()[i], ref.data()[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CsrSpmm,
                         ::testing::Values(0.0f, 0.3f, 1.0f, 5.0f));

TEST(Csr, EmptyMatrix) {
  Tensor dense(3, 3);
  const CsrMatrix csr = CsrMatrix::from_dense(dense, 0.1f);
  EXPECT_EQ(csr.nnz(), 0u);
  const Tensor x(2, 3, 1.0f);
  const Tensor y = csr.spmm_left(x);
  for (float v : y.data()) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace dynmo::tensor
