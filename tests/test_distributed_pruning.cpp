// Property tests for distributed global magnitude pruning (Algorithm 1):
// the distributed result must equal single-process global top-k exactly,
// for any rank count and any shard-size distribution.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <thread>

#include "core/rng.hpp"
#include "dynamic/distributed_pruning.hpp"
#include "tensor/tensor.hpp"

namespace dynmo::dynamic {
namespace {

struct ShardedRun {
  std::vector<std::vector<float>> shards;
  std::vector<GlobalPruneResult> results;  // per rank
};

ShardedRun run_distributed(int ranks, const std::vector<std::size_t>& sizes,
                           double sparsity, std::uint64_t seed) {
  ShardedRun run;
  run.shards.resize(static_cast<std::size_t>(ranks));
  Rng rng(seed);
  for (int r = 0; r < ranks; ++r) {
    auto& shard = run.shards[static_cast<std::size_t>(r)];
    shard.resize(sizes[static_cast<std::size_t>(r)]);
    for (auto& v : shard) v = static_cast<float>(rng.normal(0.0, 1.0));
  }
  run.results.resize(static_cast<std::size_t>(ranks));
  comm::World world(ranks);
  std::vector<std::thread> ts;
  for (int r = 0; r < ranks; ++r) {
    ts.emplace_back([&world, &run, r, sparsity] {
      comm::Communicator c = world.world_comm(r);
      run.results[static_cast<std::size_t>(r)] = global_magnitude_prune(
          c, run.shards[static_cast<std::size_t>(r)], sparsity);
    });
  }
  for (auto& t : ts) t.join();
  return run;
}

/// Single-process reference: global top-k over the concatenation.
std::vector<bool> reference_keep_mask(
    const std::vector<std::vector<float>>& shards, double sparsity) {
  std::vector<float> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  const auto k = static_cast<std::size_t>(
      std::ceil((1.0 - sparsity) * static_cast<double>(all.size())));
  const auto idx = tensor::topk_abs_indices(all, k);
  std::vector<bool> keep(all.size(), false);
  for (auto i : idx) keep[i] = true;
  return keep;
}

class DistributedPruneSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DistributedPruneSweep, MatchesSingleProcessTopK) {
  const auto [ranks, sparsity] = GetParam();
  // Uneven shard sizes, including a tiny one.
  std::vector<std::size_t> sizes;
  Rng rng(static_cast<std::uint64_t>(ranks * 1000 +
                                     static_cast<int>(sparsity * 100)));
  for (int r = 0; r < ranks; ++r) {
    sizes.push_back(20 + rng.uniform_int(200));
  }
  if (ranks > 1) sizes[1] = 3;

  const auto run = run_distributed(ranks, sizes, sparsity, 99);
  const auto ref = reference_keep_mask(run.shards, sparsity);

  // Count kept across ranks == reference count (ties broken differently
  // between nth_element runs can swap equal magnitudes, but Gaussians have
  // no exact ties, so the sets must match exactly).
  std::size_t offset = 0;
  std::size_t kept_total = 0;
  for (int r = 0; r < ranks; ++r) {
    const auto& res = run.results[static_cast<std::size_t>(r)];
    kept_total += res.keep_indices.size();
    for (auto li : res.keep_indices) {
      EXPECT_TRUE(ref[offset + li])
          << "rank " << r << " kept an index the reference pruned";
    }
    offset += sizes[static_cast<std::size_t>(r)];
  }
  const auto ref_kept = static_cast<std::size_t>(
      std::count(ref.begin(), ref.end(), true));
  EXPECT_EQ(kept_total, ref_kept);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistributedPruneSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(0.0, 0.25, 0.5, 0.9, 0.99)));

TEST(DistributedPrune, AllRanksAgreeOnThreshold) {
  const auto run = run_distributed(4, {64, 64, 64, 64}, 0.5, 7);
  for (int r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(run.results[static_cast<std::size_t>(r)].threshold,
                     run.results[0].threshold);
  }
  EXPECT_GT(run.results[0].threshold, 0.0);
}

TEST(DistributedPrune, GlobalKeptCountsReported) {
  const auto run = run_distributed(3, {50, 50, 50}, 0.8, 8);
  for (const auto& res : run.results) {
    EXPECT_EQ(res.global_kept, 30u);  // ceil(0.2 * 150)
  }
}

TEST(DistributedPrune, ZeroSparsityKeepsEverything) {
  const auto run = run_distributed(2, {10, 20}, 0.0, 9);
  EXPECT_EQ(run.results[0].keep_indices.size(), 10u);
  EXPECT_EQ(run.results[1].keep_indices.size(), 20u);
}

TEST(DistributedPrune, EmptyShardParticipates) {
  // A rank with no parameters must still be a valid collective member.
  const auto run = run_distributed(3, {40, 0, 40}, 0.5, 10);
  EXPECT_TRUE(run.results[1].keep_indices.empty());
  EXPECT_EQ(run.results[0].keep_indices.size() +
                run.results[2].keep_indices.size(),
            40u);
}

TEST(ApplyPruneMask, ZeroesComplement) {
  std::vector<float> params = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<std::uint32_t> keep = {1, 3};
  apply_prune_mask(params, keep);
  EXPECT_EQ(params, (std::vector<float>{0.0f, 2.0f, 0.0f, 4.0f}));
}

TEST(ApplyPruneMask, RejectsOutOfRange) {
  std::vector<float> params = {1.0f};
  const std::vector<std::uint32_t> keep = {5};
  EXPECT_THROW(apply_prune_mask(params, keep), Error);
}

}  // namespace
}  // namespace dynmo::dynamic
