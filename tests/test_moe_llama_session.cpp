// Focused MoE integration tests: routing-scheme comparisons at the session
// level and the bubble accounting the paper's MoE panel relies on.
#include <gtest/gtest.h>

#include "core/stats.hpp"
#include "dynmo/dynmo.hpp"

namespace dynmo {
namespace {

Options moe_options(dynamic::MoeRouting routing) {
  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.data_parallel = 2;
  opt.session.num_microbatches = 16;
  opt.session.iterations = 200;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;
  opt.moe.routing = routing;
  opt.moe.tokens_per_microbatch = 512;
  return opt;
}

runtime::SessionResult run_moe(dynamic::MoeRouting routing,
                               runtime::BalancingMode mode) {
  const auto m = model::make_moe(model::llama_moe_3_5b_config(), "m");
  auto opt = moe_options(routing);
  opt.session.mode = mode;
  Session s(m, UseCase::Moe, opt);
  return s.run();
}

/// Per-block load imbalance (paper Eq. 2) over the MoE blocks only —
/// embedding / LM head would confound a whole-pipeline comparison.
double block_load_imbalance(dynamic::MoeRouting routing) {
  const auto m = model::make_moe(model::llama_moe_3_5b_config(), "m");
  dynamic::MoeEngineConfig cfg;
  cfg.routing = routing;
  cfg.tokens_per_microbatch = 512;
  cfg.num_microbatches = 4;
  dynamic::MoeEngine eng(m, cfg);
  std::vector<model::LayerState> st(m.num_layers());
  RunningStats imb;
  for (std::int64_t it = 0; it < 60; it += 10) {
    eng.step(it, st);
    std::vector<double> loads;
    for (std::size_t l = 0; l < st.size(); ++l) {
      if (m.layers[l].kind == model::LayerKind::MoeTransformerBlock) {
        loads.push_back(st[l].moe_load);
      }
    }
    imb.add(load_imbalance(loads));
  }
  return imb.mean();
}

TEST(MoeSession, RoutingSchemesOrderByImbalance) {
  // Expert-choice is balanced by construction; S-BASE's auction caps each
  // expert at capacity; aux-loss routing keeps persistent hotspots.
  const double aux = block_load_imbalance(dynamic::MoeRouting::AuxLoss);
  const double sbase = block_load_imbalance(dynamic::MoeRouting::SBase);
  const double ec = block_load_imbalance(dynamic::MoeRouting::ExpertChoice);
  EXPECT_LT(ec, 0.01);
  EXPECT_LT(sbase, aux);
  EXPECT_GT(aux, 0.10);  // the paper's MoE imbalance is material
}

TEST(MoeSession, DynMoNeverWorseThanStaticBeyondOverhead) {
  const auto static_run = run_moe(dynamic::MoeRouting::AuxLoss,
                                  runtime::BalancingMode::StaticUniform);
  const auto dynmo = run_moe(dynamic::MoeRouting::AuxLoss,
                             runtime::BalancingMode::DynMo);
  EXPECT_GT(dynmo.tokens_per_sec, 0.95 * static_run.tokens_per_sec);
  EXPECT_GT(dynmo.rebalance_count, 0);
  EXPECT_LT(dynmo.overhead_fraction, 0.10);
}

TEST(MoeSession, MicrobatchScaleCreatesPerMbVariation) {
  const auto m = model::make_moe(model::llama_moe_3_5b_config(), "m");
  dynamic::MoeEngineConfig cfg;
  cfg.tokens_per_microbatch = 512;
  cfg.num_microbatches = 4;
  dynamic::MoeEngine eng(m, cfg);
  std::vector<model::LayerState> st(m.num_layers());
  eng.step(5, st);
  const auto scale = eng.microbatch_scale(5);
  ASSERT_TRUE(static_cast<bool>(scale));
  // Find an MoE layer and confirm the microbatches differ around mean 1.
  for (std::size_t l = 0; l < m.num_layers(); ++l) {
    if (m.layers[l].kind != model::LayerKind::MoeTransformerBlock) continue;
    double mean = 0.0;
    for (int mb = 0; mb < 4; ++mb) mean += scale(l, mb);
    EXPECT_NEAR(mean / 4.0, 1.0, 1e-9);
    break;
  }
}

}  // namespace
}  // namespace dynmo
