// Tests for the key=value config store.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/config.hpp"
#include "core/error.hpp"

namespace dynmo {
namespace {

TEST(Config, ParsesTypedValues) {
  const auto cfg = Config::parse(
      "# a comment\n"
      "stages = 8\n"
      "ratio = 0.25  # trailing comment\n"
      "name = early_exit\n"
      "repack = true\n"
      "\n");
  EXPECT_EQ(cfg.size(), 4u);
  EXPECT_EQ(cfg.get_int("stages"), 8);
  EXPECT_DOUBLE_EQ(cfg.get_double("ratio"), 0.25);
  EXPECT_EQ(cfg.get_string("name"), "early_exit");
  EXPECT_TRUE(cfg.get_bool("repack"));
}

TEST(Config, BoolSpellings) {
  const auto cfg = Config::parse("a=YES\nb=off\nc=1\nd=False");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
  EXPECT_THROW((void)Config::parse("e=maybe").get_bool("e"), Error);
}

TEST(Config, DefaultsAndMissing) {
  const auto cfg = Config::parse("x = 1");
  EXPECT_EQ(cfg.get_int("x", 7), 1);
  EXPECT_EQ(cfg.get_int("y", 7), 7);
  EXPECT_THROW((void)cfg.get_int("y"), Error);
}

TEST(Config, RejectsMalformed) {
  EXPECT_THROW((void)Config::parse("no equals sign"), Error);
  EXPECT_THROW((void)Config::parse("= value"), Error);
  EXPECT_THROW((void)Config::parse("n = 12x").get_int("n"), Error);
  EXPECT_THROW((void)Config::parse("n = one").get_double("n"), Error);
}

TEST(Config, UnknownKeysDetected) {
  const auto cfg = Config::parse("stages=8\nstagse=4");
  const auto unknown = cfg.unknown_keys({"stages", "layers"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "stagse");
}

TEST(Config, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "dynmo_cfg_test.conf";
  {
    std::ofstream out(path);
    out << "layers = 48\nmode = dynmo\n";
  }
  const auto cfg = Config::load(path.string());
  EXPECT_EQ(cfg.get_int("layers"), 48);
  EXPECT_EQ(cfg.get_string("mode"), "dynmo");
  std::filesystem::remove(path);
  EXPECT_THROW((void)Config::load(path.string()), Error);
}

}  // namespace
}  // namespace dynmo
