// Integration tests for the threaded pipeline runtime: real worker threads,
// real tensors, real migrations.  The central invariant is the paper's
// "no impact on model accuracy" claim: any stage map, any migration
// history, and any re-packing must leave the math bit-identical.
#include <gtest/gtest.h>

#include "runtime/threaded.hpp"

namespace dynmo::runtime {
namespace {

ThreadedConfig small_config() {
  ThreadedConfig cfg;
  cfg.workers = 4;
  cfg.num_layers = 8;
  cfg.hidden = 16;
  cfg.batch_rows = 3;
  cfg.microbatches = 4;
  return cfg;
}

TEST(Threaded, RunsAndReports) {
  ThreadedPipeline pipe(small_config());
  PlanPhase phase;
  phase.map = pipeline::StageMap::uniform(8, 4);
  phase.iterations = 3;
  const auto report = pipe.run({phase});
  EXPECT_EQ(report.iterations_run, 3);
  EXPECT_NE(report.output_checksum, 0u);
  EXPECT_EQ(report.bytes_migrated, 0u);
  EXPECT_EQ(report.weight_checksums.size(), 8u);
  for (auto c : report.weight_checksums) EXPECT_NE(c, 0u);
}

TEST(Threaded, OutputIndependentOfStageMap) {
  // DynMo's core correctness contract: placement never changes results.
  const auto cfg = small_config();
  std::vector<pipeline::StageMap> maps = {
      pipeline::StageMap::uniform(8, 4),
      pipeline::StageMap::from_boundaries({0, 1, 2, 3, 8}),
      pipeline::StageMap::from_boundaries({0, 6, 7, 8, 8}),
      pipeline::StageMap::from_boundaries({0, 0, 0, 8, 8}),
  };
  std::optional<std::uint64_t> expected;
  for (const auto& map : maps) {
    ThreadedPipeline pipe(cfg);
    PlanPhase phase;
    phase.map = map;
    phase.iterations = 2;
    const auto report = pipe.run({phase});
    if (!expected) {
      expected = report.output_checksum;
    } else {
      EXPECT_EQ(report.output_checksum, *expected) << map.to_string();
    }
  }
}

TEST(Threaded, MigrationPreservesWeightsAndOutputs) {
  const auto cfg = small_config();
  // Run A: stay on the initial map the whole time.
  ThreadedPipeline pipe_a(cfg);
  PlanPhase stay;
  stay.map = pipeline::StageMap::uniform(8, 4);
  stay.iterations = 4;
  const auto a = pipe_a.run({stay});

  // Run B: same 4 iterations, but migrate layers twice along the way.
  ThreadedPipeline pipe_b(cfg);
  PlanPhase p1, p2, p3;
  p1.map = pipeline::StageMap::uniform(8, 4);
  p1.iterations = 1;
  p2.map = pipeline::StageMap::from_boundaries({0, 3, 5, 6, 8});
  p2.iterations = 2;
  p3.map = pipeline::StageMap::from_boundaries({0, 1, 4, 6, 8});
  p3.iterations = 1;
  const auto b = pipe_b.run({p1, p2, p3});

  EXPECT_EQ(a.output_checksum, b.output_checksum);
  EXPECT_EQ(a.weight_checksums, b.weight_checksums);
  EXPECT_GT(b.bytes_migrated, 0u);
}

TEST(Threaded, WeightUpdatesStayDeterministicUnderMigration) {
  auto cfg = small_config();
  cfg.apply_weight_update = true;
  ThreadedPipeline pipe_a(cfg);
  PlanPhase stay;
  stay.map = pipeline::StageMap::uniform(8, 4);
  stay.iterations = 3;
  const auto a = pipe_a.run({stay});

  ThreadedPipeline pipe_b(cfg);
  PlanPhase p1 = stay;
  p1.iterations = 1;
  PlanPhase p2;
  p2.map = pipeline::StageMap::from_boundaries({0, 2, 4, 6, 8});
  p2.iterations = 2;
  const auto b = pipe_b.run({p1, p2});

  EXPECT_EQ(a.weight_checksums, b.weight_checksums);
}

TEST(Threaded, DistributedPruneSparsifiesWeights) {
  const auto cfg = small_config();
  ThreadedPipeline pipe(cfg);
  PlanPhase phase;
  phase.map = pipeline::StageMap::uniform(8, 4);
  phase.iterations = 1;
  phase.prune_sparsity = 0.75;
  const auto report = pipe.run({phase});
  const std::size_t total = cfg.num_layers * cfg.hidden * cfg.hidden;
  EXPECT_NEAR(static_cast<double>(report.weights_nnz),
              0.25 * static_cast<double>(total),
              0.01 * static_cast<double>(total));
}

TEST(Threaded, PruneThenTrainStillDeterministic) {
  const auto cfg = small_config();
  const auto run_once = [&cfg] {
    ThreadedPipeline pipe(cfg);
    PlanPhase p1;
    p1.map = pipeline::StageMap::uniform(8, 4);
    p1.iterations = 1;
    PlanPhase p2 = p1;
    p2.prune_sparsity = 0.5;
    p2.iterations = 2;
    return pipe.run({p1, p2});
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.output_checksum, b.output_checksum);
  EXPECT_EQ(a.weight_checksums, b.weight_checksums);
}

TEST(Threaded, RepackReleasesWorkersAndContinues) {
  const auto cfg = small_config();
  ThreadedPipeline pipe(cfg);
  PlanPhase p1;
  p1.map = pipeline::StageMap::uniform(8, 4);
  p1.iterations = 2;
  // Phase 2: consolidate onto workers 0-1; workers 2-3 released after
  // their layers migrate away.
  PlanPhase p2;
  p2.map = pipeline::StageMap::from_boundaries({0, 4, 8, 8, 8});
  p2.iterations = 2;
  p2.active = std::vector<bool>{true, true, false, false};
  const auto report = pipe.run({p1, p2});
  EXPECT_EQ(report.iterations_run, 4);
  EXPECT_GT(report.bytes_migrated, 0u);

  // Identical math to a run that never repacked.
  ThreadedPipeline ref(cfg);
  PlanPhase stay = p1;
  stay.iterations = 4;
  EXPECT_EQ(report.output_checksum, ref.run({stay}).output_checksum);
}

TEST(Threaded, ExpandRejoinsReleasedWorkersViaCheckpoint) {
  // The full elastic lifecycle on real threads: shrink onto 2 workers,
  // then a restart phase re-activates the released ones, whose weights
  // arrive via checkpoint reload — and the math stays bit-identical to a
  // run that never breathed.
  const auto cfg = small_config();
  ThreadedPipeline pipe(cfg);
  PlanPhase p1;
  p1.map = pipeline::StageMap::uniform(8, 4);
  p1.iterations = 2;
  PlanPhase p2;  // shrink: consolidate onto workers 0-1, release 2-3
  p2.map = pipeline::StageMap::from_boundaries({0, 4, 8, 8, 8});
  p2.iterations = 2;
  p2.active = std::vector<bool>{true, true, false, false};
  PlanPhase p3;  // expand: workers 2-3 re-join through the checkpoint
  p3.map = pipeline::StageMap::uniform(8, 4);
  p3.iterations = 2;
  p3.restart_active = std::vector<bool>{true, true, true, true};
  const auto report = pipe.run({p1, p2, p3});
  EXPECT_EQ(report.iterations_run, 6);
  EXPECT_EQ(report.restarts, 1);
  EXPECT_GT(report.bytes_checkpoint, 0u);
  EXPECT_GT(report.worker_busy_s[2], 0.0);  // re-joined and worked

  ThreadedPipeline ref(cfg);
  PlanPhase stay = p1;
  stay.iterations = 6;
  const auto r = ref.run({stay});
  EXPECT_EQ(report.output_checksum, r.output_checksum);
  EXPECT_EQ(report.weight_checksums, r.weight_checksums);
}

TEST(Threaded, RestartWithoutReleaseIsACheckpointRoundTrip) {
  // A restart over the unchanged active set reloads every worker's
  // weights from the serialized checkpoint mid-run — determinism means
  // the byte format preserved them exactly.
  const auto cfg = small_config();
  ThreadedPipeline pipe(cfg);
  PlanPhase p1;
  p1.map = pipeline::StageMap::uniform(8, 4);
  p1.iterations = 2;
  PlanPhase p2;
  p2.map = pipeline::StageMap::from_boundaries({0, 3, 5, 6, 8});
  p2.iterations = 2;
  p2.restart_active = std::vector<bool>{true, true, true, true};
  const auto report = pipe.run({p1, p2});
  EXPECT_EQ(report.restarts, 1);
  EXPECT_EQ(report.bytes_migrated, 0u);  // reload, not P2P migration

  ThreadedPipeline ref(cfg);
  PlanPhase stay = p1;
  stay.iterations = 4;
  EXPECT_EQ(report.output_checksum, ref.run({stay}).output_checksum);
}

TEST(Threaded, WeightUpdatesSurviveAnElasticRestart) {
  auto cfg = small_config();
  cfg.apply_weight_update = true;
  ThreadedPipeline pipe(cfg);
  PlanPhase p1;
  p1.map = pipeline::StageMap::uniform(8, 4);
  p1.iterations = 2;
  PlanPhase p2;
  p2.map = pipeline::StageMap::from_boundaries({0, 4, 8, 8, 8});
  p2.iterations = 1;
  p2.active = std::vector<bool>{true, true, false, false};
  PlanPhase p3;
  p3.map = pipeline::StageMap::uniform(8, 4);
  p3.iterations = 1;
  p3.restart_active = std::vector<bool>{true, true, true, true};
  const auto breathed = pipe.run({p1, p2, p3});

  ThreadedPipeline ref(cfg);
  PlanPhase stay = p1;
  stay.iterations = 4;
  EXPECT_EQ(breathed.weight_checksums, ref.run({stay}).weight_checksums);
}

TEST(Threaded, BusyTimeConcentratesOnHostingWorkers) {
  const auto cfg = small_config();
  ThreadedPipeline pipe(cfg);
  PlanPhase phase;
  phase.map = pipeline::StageMap::from_boundaries({0, 8, 8, 8, 8});
  phase.iterations = 3;
  const auto report = pipe.run({phase});
  EXPECT_GT(report.worker_busy_s[0], 0.0);
  EXPECT_EQ(report.worker_busy_s[2], 0.0);
}

TEST(Threaded, RejectsMalformedPlans) {
  ThreadedPipeline pipe(small_config());
  EXPECT_THROW((void)pipe.run({}), Error);
  PlanPhase bad;
  bad.map = pipeline::StageMap::uniform(8, 3);  // wrong worker count
  EXPECT_THROW((void)pipe.run({bad}), Error);
  PlanPhase bad_release;
  bad_release.map = pipeline::StageMap::from_boundaries({0, 0, 4, 6, 8});
  bad_release.active = std::vector<bool>{false, true, true, true};
  EXPECT_THROW((void)pipe.run({bad_release}), Error);  // rank 0 must stay

  PlanPhase bad_restart;
  bad_restart.map = pipeline::StageMap::uniform(8, 4);
  bad_restart.restart_active = std::vector<bool>{false, true, true, true};
  EXPECT_THROW((void)pipe.run({bad_restart}), Error);  // rank 0 must stay
  bad_restart.restart_active = std::vector<bool>{true, true, true};
  EXPECT_THROW((void)pipe.run({bad_restart}), Error);  // mask size
  bad_restart.restart_active = std::vector<bool>{true, true, true, true};
  bad_restart.active = std::vector<bool>{true, true, true, true};
  EXPECT_THROW((void)pipe.run({bad_restart}), Error);  // release xor restart
}

}  // namespace
}  // namespace dynmo::runtime
