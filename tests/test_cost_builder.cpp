// Tests for the pipeline cost builder and the dynmo:: facade.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "dynmo/dynmo.hpp"
#include "pipeline/cost_builder.hpp"

namespace dynmo {
namespace {

pipeline::CostBuilder make_builder(const model::ModelDesc& m,
                                   std::size_t micro_batch = 2,
                                   int microbatches = 4) {
  return pipeline::CostBuilder(
      m, model::LayerCostModel{}, comm::CostModel{},
      pipeline::CostBuilderConfig{micro_batch, microbatches});
}

TEST(CostBuilder, LayerTimesMatchModel) {
  const auto m = model::make_gpt({.num_blocks = 8,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const auto builder = make_builder(m);
  std::vector<model::LayerState> states(m.num_layers());
  const auto times = builder.layer_times(states);
  ASSERT_EQ(times.size(), 8u);
  model::LayerCostModel lc{};
  for (std::size_t l = 0; l < 8; ++l) {
    EXPECT_DOUBLE_EQ(times[l].forward_s,
                     lc.layer_times(m.layers[l], states[l], 2).forward_s);
  }
  const auto totals = builder.layer_total_seconds(states);
  for (std::size_t l = 0; l < 8; ++l) {
    EXPECT_DOUBLE_EQ(totals[l], times[l].total_s());
  }
}

TEST(CostBuilder, StageCostsSumLayerTimes) {
  const auto m = model::make_gpt({.num_blocks = 8,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const auto builder = make_builder(m);
  std::vector<model::LayerState> states(m.num_layers());
  const auto map = pipeline::StageMap::uniform(8, 4);
  const auto costs = builder.build(states, map);
  const auto times = builder.layer_times(states);
  for (int s = 0; s < 4; ++s) {
    double fwd = 0.0;
    for (std::size_t l = map.stage_begin(s); l < map.stage_end(s); ++l) {
      fwd += times[l].forward_s;
    }
    EXPECT_NEAR(costs.fwd(s, 0), fwd, 1e-12);
  }
  // Send costs populated for all internal boundaries.
  for (int s = 0; s + 1 < 4; ++s) EXPECT_GT(costs.send(s), 0.0);
}

TEST(CostBuilder, MicrobatchScaleHookApplies) {
  const auto m = model::make_gpt({.num_blocks = 4,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const auto builder = make_builder(m);
  std::vector<model::LayerState> states(m.num_layers());
  const auto map = pipeline::StageMap::uniform(4, 2);
  const auto costs = builder.build(
      states, map, [](std::size_t, int mb) { return mb == 0 ? 2.0 : 1.0; });
  EXPECT_NEAR(costs.fwd(0, 0), 2.0 * costs.fwd(0, 1), 1e-12);
}

TEST(CostBuilder, MemoryScalesWithStageDepth) {
  const auto m = model::make_gpt({.num_blocks = 8,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const auto builder = make_builder(m, 2, 16);
  std::vector<model::LayerState> states(m.num_layers());
  const auto map = pipeline::StageMap::uniform(8, 4);
  const auto mem = builder.layer_memory_bytes(states, map);
  // Earlier stages keep more in-flight microbatches resident under 1F1B.
  EXPECT_GT(mem[0], mem[7]);
}

TEST(CostBuilder, StageToRankPricesBoundarySends) {
  // 2 nodes x 2 GPUs; a placement that puts the stage-1/2 boundary across
  // the fabric must charge that send the InfiniBand price while the
  // intra-node boundaries stay on NVLink.
  const auto m = model::make_gpt({.num_blocks = 8,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const auto dep = cluster::Deployment::make_linear(
      cluster::Topology::make_homogeneous(
          2, 2, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      4);
  pipeline::CostBuilderConfig cfg{2, 4};
  cfg.stage_to_rank.assign(dep.stage_to_rank().begin(),
                           dep.stage_to_rank().end());
  pipeline::CostBuilder builder(m, model::LayerCostModel{},
                                dep.make_cost_model(), cfg);
  EXPECT_EQ(builder.rank_of_stage(2), 2);
  std::vector<model::LayerState> states(m.num_layers());
  const auto map = pipeline::StageMap::uniform(8, 4);
  const auto costs = builder.build(states, map);
  // Boundary 1→2 crosses nodes: far slower than the NVLink boundaries.
  EXPECT_GT(costs.send(1), 5.0 * costs.send(0));
  EXPECT_GT(costs.send(1), 5.0 * costs.send(2));
}

TEST(CostBuilder, PerStageGpusChargeEachStageItsOwnHardware) {
  const auto m = model::make_gpt({.num_blocks = 8,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const std::vector<hw::GpuSpec> gpus{hw::GpuSpec::h100_sxm5(),
                                      hw::GpuSpec::a100_sxm4()};
  model::StageCostModels stage_costs(
      model::LayerCostModel(hw::GpuSpec::h100_sxm5()), gpus);
  EXPECT_TRUE(stage_costs.per_stage());
  pipeline::CostBuilder builder(m, stage_costs, comm::CostModel{},
                                pipeline::CostBuilderConfig{2, 4});
  std::vector<model::LayerState> states(m.num_layers());
  const auto map = pipeline::StageMap::uniform(8, 2);  // 4 layers each
  const auto costs = builder.build(states, map);
  // Same layer count per stage, but stage 1 runs on the A100: slower.
  EXPECT_GT(costs.fwd(1, 0), 1.5 * costs.fwd(0, 0));
  // The balancer-facing profile stays in reference (H100) seconds.
  const auto ref_times = builder.layer_total_seconds(states);
  model::LayerCostModel h100{hw::GpuSpec::h100_sxm5()};
  EXPECT_DOUBLE_EQ(ref_times[7],
                   h100.layer_times(m.layers[7], states[7], 2).total_s());
}

TEST(CostBuilder, RejectsMismatchedStates) {
  const auto m = model::make_gpt({.num_blocks = 8,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const auto builder = make_builder(m);
  std::vector<model::LayerState> wrong(3);
  EXPECT_THROW((void)builder.layer_times(wrong), Error);
}

TEST(Facade, MakeEngineCoversAllCases) {
  const auto gpt = model::make_gpt({.num_blocks = 8,
                                    .include_embedding = false,
                                    .include_lm_head = false});
  const auto moe = model::make_moe(model::llama_moe_3_5b_config(), "m");
  Options opt;
  EXPECT_EQ(make_engine(UseCase::Static, gpt, opt), nullptr);
  for (UseCase uc : {UseCase::GradualPruning, UseCase::LayerFreezing,
                     UseCase::SparseAttention, UseCase::EarlyExit,
                     UseCase::MixtureOfDepths}) {
    const auto engine = make_engine(uc, gpt, opt);
    ASSERT_NE(engine, nullptr) << to_string(uc);
    EXPECT_FALSE(engine->name().empty());
    EXPECT_GE(engine->recommended_rebalance_interval(), 1);
  }
  EXPECT_NE(make_engine(UseCase::Moe, moe, opt), nullptr);
}

TEST(Facade, ToStringRoundTrip) {
  EXPECT_STREQ(to_string(UseCase::Moe), "moe");
  EXPECT_STREQ(to_string(UseCase::EarlyExit), "early_exit");
  EXPECT_STREQ(runtime::to_string(runtime::BalancingMode::DynMo), "dynmo");
  EXPECT_STREQ(balance::to_string(balance::Algorithm::Partition),
               "partition");
  EXPECT_STREQ(balance::to_string(balance::BalanceBy::Time), "by_time");
  EXPECT_STREQ(pipeline::to_string(pipeline::ScheduleKind::ZbH1), "zb-h1");
}

TEST(Facade, SessionRunsEveryUseCaseEndToEnd) {
  Options opt;
  opt.session.pipeline_stages = 4;
  opt.session.num_microbatches = 8;
  opt.session.iterations = 100;
  opt.session.sim_stride = 20;
  opt.session.rebalance_interval = 20;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.moe.tokens_per_microbatch = 256;
  for (UseCase uc : {UseCase::Static, UseCase::GradualPruning,
                     UseCase::LayerFreezing, UseCase::SparseAttention,
                     UseCase::EarlyExit, UseCase::MixtureOfDepths}) {
    const auto m = model::make_gpt({.num_blocks = 8,
                                    .include_embedding = false,
                                    .include_lm_head = false});
    Session s(m, uc, opt);
    const auto r = s.run();
    EXPECT_GT(r.tokens_per_sec, 0.0) << to_string(uc);
  }
  const auto moe = model::make_moe(model::llama_moe_3_5b_config(), "m");
  Session s(moe, UseCase::Moe, opt);
  EXPECT_GT(s.run().tokens_per_sec, 0.0);
}

}  // namespace
}  // namespace dynmo
