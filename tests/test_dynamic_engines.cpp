// Unit tests for the six dynamism engines: schedules, monotonicity,
// determinism, and the statistical properties the paper relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hpp"
#include "dynamic/early_exit.hpp"
#include "dynamic/freezing.hpp"
#include "dynamic/mod.hpp"
#include "dynamic/moe.hpp"
#include "dynamic/pruning.hpp"
#include "dynamic/sparse_attn.hpp"

namespace dynmo::dynamic {
namespace {

model::ModelDesc gpt(std::size_t blocks) {
  return model::make_gpt({.num_blocks = blocks,
                          .include_embedding = false,
                          .include_lm_head = false});
}

// ---------------------------------------------------------------- pruning

TEST(PruningSchedule, ZhuGuptaCheckpoints) {
  // Paper §5.1: with t0=3000, Δt=1000, n=4, S_f=0.9, sparsity after each
  // step is 52%, 79%, 90% (and 90% at the end).
  PruningSchedule s;
  EXPECT_DOUBLE_EQ(s.sparsity_at(0), 0.0);
  EXPECT_DOUBLE_EQ(s.sparsity_at(2999), 0.0);
  EXPECT_NEAR(s.sparsity_at(4000), 0.52, 0.01);
  EXPECT_NEAR(s.sparsity_at(5000), 0.79, 0.01);
  EXPECT_NEAR(s.sparsity_at(6000), 0.876, 0.01);
  EXPECT_DOUBLE_EQ(s.sparsity_at(7000), 0.9);
  EXPECT_DOUBLE_EQ(s.sparsity_at(100000), 0.9);
}

TEST(PruningSchedule, StepDetection) {
  PruningSchedule s;
  EXPECT_TRUE(s.is_pruning_step(3000));
  EXPECT_TRUE(s.is_pruning_step(5000));
  EXPECT_TRUE(s.is_pruning_step(7000));
  EXPECT_FALSE(s.is_pruning_step(3500));
  EXPECT_FALSE(s.is_pruning_step(8000));
  EXPECT_FALSE(s.is_pruning_step(0));
}

TEST(PruningEngine, GlobalRetentionMatchesTarget) {
  const auto m = gpt(24);
  PruningEngine eng(m, {});
  for (double s : {0.3, 0.6, 0.9}) {
    const auto keep = eng.retention_at_sparsity(s);
    // Weighted average retention across prunable layers ≈ 1 - s.
    double kept_params = 0.0;
    double total_params = 0.0;
    for (std::size_t l = 0; l < m.num_layers(); ++l) {
      kept_params += keep[l] * static_cast<double>(m.layers[l].params);
      total_params += static_cast<double>(m.layers[l].params);
    }
    EXPECT_NEAR(kept_params / total_params, 1.0 - s, 0.01) << s;
  }
}

TEST(PruningEngine, RetentionSkewAcrossLayers) {
  // The load-imbalance source: at 90% sparsity some layers retain much
  // more than others.
  const auto m = gpt(24);
  PruningEngine eng(m, {});
  const auto keep = eng.retention_at_sparsity(0.9);
  const double lo = *std::min_element(keep.begin(), keep.end());
  const double hi = *std::max_element(keep.begin(), keep.end());
  EXPECT_GT(hi / std::max(lo, 1e-9), 2.0);
}

TEST(PruningEngine, StepSetsDensityAndBackend) {
  const auto m = gpt(8);
  PruningEngine eng(m, {});
  std::vector<model::LayerState> st(m.num_layers());
  eng.step(7000, st);  // final sparsity 0.9
  int sputnik = 0;
  for (const auto& s : st) {
    EXPECT_LE(s.weight_density, 1.0);
    if (s.spmm_backend == hw::SpmmBackend::Sputnik) {
      ++sputnik;
      EXPECT_LT(s.weight_density, hw::KernelCostModel::kSputnikRelEff);
    }
  }
  EXPECT_GT(sputnik, 0);  // most layers cross the Sputnik threshold at 90%
}

TEST(PruningEngine, MonotoneSparsityMonotoneDensity) {
  const auto m = gpt(8);
  PruningEngine eng(m, {});
  std::vector<model::LayerState> early(m.num_layers()), late(m.num_layers());
  eng.step(4000, early);
  eng.step(7000, late);
  for (std::size_t l = 0; l < m.num_layers(); ++l) {
    EXPECT_LE(late[l].weight_density, early[l].weight_density + 1e-12);
  }
}

// --------------------------------------------------------------- freezing

TEST(FreezingEngine, FrontBiasAndMonotonicity) {
  const auto m = gpt(24);
  FreezingEngine eng(m, {});
  // Freezing never reverses.
  std::size_t prev = 0;
  for (std::int64_t it = 0; it <= 20000; it += 300) {
    const std::size_t now = eng.frozen_count(it);
    EXPECT_GE(now, prev);
    prev = now;
  }
  // Early layers freeze earlier on average than late prunable layers.
  const auto early_at = eng.freeze_iteration(1);
  const auto later_at = eng.freeze_iteration(17);
  EXPECT_LE(early_at, later_at);
}

TEST(FreezingEngine, TailNeverFreezes) {
  const auto m = gpt(20);
  FreezingEngineConfig cfg;
  cfg.never_freeze_tail = 0.25;
  FreezingEngine eng(m, cfg);
  std::vector<model::LayerState> st(m.num_layers());
  eng.step(1'000'000'000, st);
  for (std::size_t l = 15; l < 20; ++l) EXPECT_FALSE(st[l].frozen) << l;
  // But a substantial prefix is frozen by then.
  EXPECT_TRUE(st[0].frozen);
}

TEST(FreezingEngine, DecisionsLandOnCheckBoundaries) {
  const auto m = gpt(16);
  FreezingEngineConfig cfg;
  cfg.check_interval = 300;
  FreezingEngine eng(m, cfg);
  for (std::size_t l = 0; l < m.num_layers(); ++l) {
    const auto at = eng.freeze_iteration(l);
    if (at != std::numeric_limits<std::int64_t>::max()) {
      EXPECT_EQ(at % 300, 0) << l;
    }
  }
}

TEST(FreezingEngine, EgeriaOverheadGrowsWithDepth) {
  EXPECT_GT(FreezingEngine::egeria_check_overhead_s(48),
            FreezingEngine::egeria_check_overhead_s(24));
}

// ------------------------------------------------------------ sparse attn

TEST(SparseAttn, DensityBounds) {
  const auto m = gpt(16);
  SparseAttnEngine eng(m, {});
  for (std::int64_t it : {0, 17, 500, 9999}) {
    for (std::size_t l = 0; l < m.num_layers(); ++l) {
      const double d = eng.layer_density(l, it);
      EXPECT_GE(d, 0.02);
      EXPECT_LE(d, 0.5);
    }
  }
}

TEST(SparseAttn, TemporallyCorrelatedWithinHashEpoch) {
  const auto m = gpt(16);
  SparseAttnEngine eng(m, {});
  // Same hash epoch (iter/25): densities nearly equal; different epochs
  // decorrelate.
  double same_delta = 0.0;
  double cross_delta = 0.0;
  for (std::size_t l = 0; l < m.num_layers(); ++l) {
    same_delta += std::abs(eng.layer_density(l, 100) -
                           eng.layer_density(l, 101));
    cross_delta += std::abs(eng.layer_density(l, 100) -
                            eng.layer_density(l, 300));
  }
  EXPECT_LT(same_delta, cross_delta);
}

TEST(SparseAttn, StepWritesComputeScale) {
  const auto m = gpt(8);
  SparseAttnEngine eng(m, {});
  std::vector<model::LayerState> st(m.num_layers());
  eng.step(42, st);
  for (const auto& s : st) {
    EXPECT_GT(s.compute_scale, 0.0);
    EXPECT_LE(s.compute_scale, 1.0);  // density <= 0.5 → scale <= 1
  }
  // Mean reduction is substantial (that's the point of sparsifying).
  double mean = 0.0;
  for (const auto& s : st) mean += s.compute_scale;
  mean /= static_cast<double>(st.size());
  EXPECT_LT(mean, 0.8);
}

// ------------------------------------------------------------- early exit

TEST(EarlyExit, SurvivalMonotoneInDepth) {
  const auto m = gpt(32);
  EarlyExitEngine eng(m, {});
  std::vector<model::LayerState> st(m.num_layers());
  eng.step(10000, st);
  for (std::size_t l = 1; l < st.size(); ++l) {
    EXPECT_LE(st[l].token_fraction, st[l - 1].token_fraction + 1e-12);
  }
  EXPECT_DOUBLE_EQ(st[0].token_fraction, 1.0);  // warm prefix
  EXPECT_LT(st.back().token_fraction, 0.2);     // deep tail exits
}

TEST(EarlyExit, ConfidenceRampsOverTraining) {
  const auto m = gpt(32);
  EarlyExitEngine eng(m, {});
  // Later in training, more tokens exit (deep layers lighter).
  EXPECT_GT(eng.survival(30, 100), eng.survival(30, 10000));
  EXPECT_NEAR(eng.survival(30, 0), 1.0, 0.15);
}

TEST(EarlyExit, HeadAndEmbeddingExempt) {
  const auto m = model::make_gpt({.num_blocks = 8});  // with emb + head
  EarlyExitEngine eng(m, {});
  std::vector<model::LayerState> st(m.num_layers());
  eng.step(10000, st);
  EXPECT_DOUBLE_EQ(st.front().token_fraction, 1.0);  // embedding
  EXPECT_DOUBLE_EQ(st.back().token_fraction, 1.0);   // lm head
}

TEST(EarlyExit, DeeperModelsSaveRelativelyMore) {
  EarlyExitEngineConfig cfg;
  const auto shallow = gpt(24);
  const auto deep = gpt(48);
  EarlyExitEngine e24(shallow, cfg), e48(deep, cfg);
  std::vector<model::LayerState> s24(24), s48(48);
  e24.step(10000, s24);
  e48.step(10000, s48);
  const auto frac = [](std::span<const model::LayerState> st) {
    double acc = 0.0;
    for (const auto& s : st) acc += s.token_fraction;
    return acc / static_cast<double>(st.size());
  };
  EXPECT_LT(frac(s48), frac(s24));
}

// -------------------------------------------------------------------- MoE

TEST(Moe, RouteCountsConserveTokens) {
  const auto m = model::make_moe(model::mixtral_8x7b_config(), "m");
  MoeEngineConfig cfg;
  cfg.tokens_per_microbatch = 1024;
  MoeEngine eng(m, cfg);
  const auto counts = eng.route_tokens(1, 7, 0);
  std::size_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 1024u * m.layers[1].top_k);
}

TEST(Moe, ExpertChoicePerfectlyBalanced) {
  const auto m = model::make_moe(model::mixtral_8x7b_config(), "m");
  MoeEngineConfig cfg;
  cfg.routing = MoeRouting::ExpertChoice;
  MoeEngine eng(m, cfg);
  const auto counts = eng.route_tokens(1, 7, 0);
  EXPECT_NEAR(MoeEngine::bottleneck_factor(counts), 1.0, 1e-9);
}

TEST(Moe, SBaseNearlyBalanced) {
  const auto m = model::make_moe(model::mixtral_8x7b_config(), "m");
  MoeEngineConfig aux, sbase;
  sbase.routing = MoeRouting::SBase;
  MoeEngine e_aux(m, aux), e_sbase(m, sbase);
  double aux_f = 0.0, sbase_f = 0.0;
  for (int it = 0; it < 20; ++it) {
    aux_f += MoeEngine::bottleneck_factor(e_aux.route_tokens(1, it, 0));
    sbase_f += MoeEngine::bottleneck_factor(e_sbase.route_tokens(1, it, 0));
  }
  // S-BASE's auction caps expert load at capacity: strictly tighter.
  EXPECT_LT(sbase_f, aux_f);
  EXPECT_NEAR(sbase_f / 20.0, 1.0, 0.05);
  // Aux-loss routing keeps a persistent hotspot.
  EXPECT_GT(aux_f / 20.0, 1.1);
}

TEST(Moe, StepSetsLoadsOnlyOnMoeBlocks) {
  const auto m = model::make_moe(model::llama_moe_3_5b_config(), "m");
  MoeEngineConfig cfg;
  cfg.tokens_per_microbatch = 512;
  cfg.num_microbatches = 2;
  MoeEngine eng(m, cfg);
  std::vector<model::LayerState> st(m.num_layers());
  eng.step(3, st);
  EXPECT_DOUBLE_EQ(st.front().moe_load, 1.0);  // embedding untouched
  bool any = false;
  for (std::size_t l = 0; l < st.size(); ++l) {
    if (m.layers[l].kind == model::LayerKind::MoeTransformerBlock) {
      EXPECT_GT(st[l].moe_load, 0.9);
      any = true;
    }
  }
  EXPECT_TRUE(any);
  // Microbatch scale hook is available and positive.
  const auto scale = eng.microbatch_scale(3);
  ASSERT_TRUE(static_cast<bool>(scale));
  EXPECT_GT(scale(1, 0), 0.0);
}

// -------------------------------------------------------------------- MoD

TEST(Mod, OnlyAlternateBlocksRoute) {
  const auto m = gpt(8);
  ModEngine eng(m, {});
  // route_every=2: blocks 1,3,5,7 are MoD blocks.
  EXPECT_FALSE(eng.is_mod_block(0));
  EXPECT_TRUE(eng.is_mod_block(1));
  EXPECT_FALSE(eng.is_mod_block(2));
  EXPECT_TRUE(eng.is_mod_block(7));
}

TEST(Mod, RoutedFractionBounds) {
  const auto m = gpt(16);
  ModEngine eng(m, {});
  for (std::int64_t it : {0, 1, 99, 5000}) {
    for (std::size_t l = 0; l < 16; ++l) {
      const double f = eng.routed_fraction(l, it);
      EXPECT_GE(f, 0.05);
      EXPECT_LE(f, 1.0);
      if (!eng.is_mod_block(l)) EXPECT_DOUBLE_EQ(f, 1.0);
    }
  }
}

TEST(Mod, PersistentPerLayerCapacity) {
  const auto m = gpt(16);
  ModEngine eng(m, {});
  // Same layer, adjacent iterations within a drift block: highly similar.
  const double a = eng.routed_fraction(1, 500);
  const double b = eng.routed_fraction(1, 501);
  EXPECT_NEAR(a, b, 0.25 * a);
  // Different layers differ systematically.
  double spread = 0.0;
  for (std::size_t l = 1; l < 16; l += 2) {
    spread = std::max(spread, std::abs(eng.routed_fraction(l, 500) -
                                       eng.routed_fraction(1, 500)));
  }
  EXPECT_GT(spread, 0.05);
}

TEST(Mod, ImbalanceMagnitudeMatchesPaper) {
  // Static stage loads should show roughly the paper's ~18% MoD imbalance
  // (Eq. 2) on a 48-layer model over 8 stages.
  const auto m = gpt(48);
  ModEngine eng(m, {});
  std::vector<model::LayerState> st(m.num_layers());
  model::LayerCostModel costs{};
  RunningStats imb;
  for (std::int64_t it = 0; it < 200; it += 10) {
    eng.step(it, st);
    std::vector<double> times;
    for (std::size_t l = 0; l < st.size(); ++l) {
      times.push_back(costs.layer_times(m.layers[l], st[l], 2).total_s());
    }
    const auto map = pipeline::StageMap::uniform(st.size(), 8);
    imb.add(load_imbalance(map.stage_loads(times)));
  }
  EXPECT_GT(imb.mean(), 0.08);
  EXPECT_LT(imb.mean(), 0.45);
}

// -------------------------------------------------------------- generic

TEST(Engines, ComputeFractionReflectsSavings) {
  const auto m = gpt(32);
  EarlyExitEngine eng(m, {});
  std::vector<model::LayerState> st(m.num_layers());
  eng.step(10000, st);
  const double frac = eng.compute_fraction(st);
  EXPECT_LT(frac, 0.7);
  EXPECT_GT(frac, 0.05);
}

TEST(Engines, DeterministicAcrossInstances) {
  const auto m = gpt(16);
  SparseAttnEngine a(m, {}), b(m, {});
  std::vector<model::LayerState> sa(16), sb(16);
  a.step(123, sa);
  b.step(123, sb);
  for (std::size_t l = 0; l < 16; ++l) {
    EXPECT_DOUBLE_EQ(sa[l].compute_scale, sb[l].compute_scale);
  }
}

}  // namespace
}  // namespace dynmo::dynamic
