// Unit tests for core/: rng, stats, units, error handling.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/error.hpp"
#include "core/log.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"

namespace dynmo {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIndependentStreams) {
  Rng root(7);
  Rng s1 = root.split(1);
  Rng s2 = root.split(2);
  Rng s1b = Rng(7).split(1);
  EXPECT_EQ(s1(), s1b());
  EXPECT_NE(s1(), s2());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.03);
  EXPECT_NEAR(st.stddev(), 1.0, 0.03);
}

TEST(Rng, LognormalPositive) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ZipfSkewsLow) {
  Rng rng(13);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(16, 1.2)];
  EXPECT_GT(counts[0], counts[8]);
  EXPECT_GT(counts[0], counts[15]);
}

TEST(Rng, ZipfZeroExponentIsUniformish) {
  Rng rng(14);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.zipf(8, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(15);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, CategoricalThrowsOnAllZero) {
  Rng rng(16);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW((void)rng.categorical(w), Error);
}

TEST(RunningStats, MatchesBatch) {
  Rng rng(17);
  RunningStats st;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    st.add(x);
    xs.push_back(x);
  }
  EXPECT_NEAR(st.mean(), mean_of(xs), 1e-9);
  EXPECT_NEAR(st.stddev(), stddev_of(xs), 1e-9);
  EXPECT_DOUBLE_EQ(st.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(st.max(), max_of(xs));
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(18);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 2.5);
}

TEST(Stats, LoadImbalanceEq2) {
  // Paper Eq. (2): (Lmax - Lmin) / mean(L).
  std::vector<double> loads = {2.0, 4.0, 6.0};
  EXPECT_NEAR(load_imbalance(loads), (6.0 - 2.0) / 4.0, 1e-12);
  std::vector<double> balanced = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(load_imbalance(balanced), 0.0);
  EXPECT_DOUBLE_EQ(load_imbalance({}), 0.0);
}

TEST(Stats, MaxOverMean) {
  std::vector<double> loads = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(max_over_mean(loads), 1.5);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.002), "2 ms");
  EXPECT_EQ(format_seconds(3.0), "3 s");
}

TEST(Log, SinkCapturesFormattedLines) {
  std::vector<std::string> lines;
  Logger::instance().set_sink(
      [&lines](LogLevel, std::string_view line) { lines.emplace_back(line); });
  const LogLevel before = Logger::instance().level();
  Logger::instance().set_level(LogLevel::Info);
  DYNMO_LOG(Info) << "captured " << 7;
  DYNMO_LOG(Debug) << "below the level, dropped";
  Logger::instance().set_level(before);
  Logger::instance().set_sink({});  // restore stderr

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[dynmo INFO "), std::string::npos);
  EXPECT_NE(lines[0].find("captured 7"), std::string::npos);
}

TEST(Log, PrefixIsIso8601Utc) {
  std::vector<std::string> lines;
  Logger::instance().set_sink(
      [&lines](LogLevel, std::string_view line) { lines.emplace_back(line); });
  const LogLevel before = Logger::instance().level();
  Logger::instance().set_level(LogLevel::Warn);
  DYNMO_LOG(Warn) << "stamp check";
  Logger::instance().set_level(before);
  Logger::instance().set_sink({});

  ASSERT_EQ(lines.size(), 1u);
  // 2026-08-08T12:34:56.789Z — fixed-width ISO-8601 with milliseconds.
  const std::string& l = lines[0];
  ASSERT_GE(l.size(), 24u);
  EXPECT_EQ(l[4], '-');
  EXPECT_EQ(l[7], '-');
  EXPECT_EQ(l[10], 'T');
  EXPECT_EQ(l[13], ':');
  EXPECT_EQ(l[16], ':');
  EXPECT_EQ(l[19], '.');
  EXPECT_EQ(l[23], 'Z');
  for (int i : {0, 1, 2, 3, 5, 6, 8, 9, 11, 12, 14, 15, 17, 18, 20, 21, 22}) {
    EXPECT_TRUE(l[static_cast<std::size_t>(i)] >= '0' &&
                l[static_cast<std::size_t>(i)] <= '9')
        << "position " << i << " in " << l;
  }
  EXPECT_EQ(l[24], ' ');
  EXPECT_NE(l.find("[dynmo WARN "), std::string::npos);
}

TEST(Error, CheckThrowsWithContext) {
  try {
    DYNMO_CHECK(1 == 2, "value " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("42"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(DYNMO_CHECK(true, "never"));
}

}  // namespace
}  // namespace dynmo
