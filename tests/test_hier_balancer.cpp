// Two-level hierarchical diffusion: intra-node-only convergence, the
// inter-node escalation path, capacity-aware (heterogeneous) balancing,
// fewer inter-node migration bytes than flat diffusion, and topology-aware
// migration pricing.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "balance/diffusion.hpp"
#include "balance/migration.hpp"
#include "cluster/hier_balancer.hpp"
#include "cluster/placement.hpp"
#include "cluster/topology.hpp"
#include "core/error.hpp"
#include "core/stats.hpp"

namespace dynmo::cluster {
namespace {

/// Per-node-local exponential decay: heavy layers at the front of each
/// node's half, node totals equal — an imbalance NVLink alone can fix.
std::vector<double> intra_node_skew(std::size_t layers, std::size_t per_node) {
  std::vector<double> w(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    const auto i = static_cast<double>(l % per_node);
    w[l] = 0.25 + 4.0 * std::exp(-0.35 * i) + 0.13 * static_cast<double>(l % 3);
  }
  return w;
}

double stage_range_load(const pipeline::StageMap& m,
                        std::span<const double> w, int s_begin, int s_end) {
  const auto loads = m.stage_loads(w);
  double acc = 0.0;
  for (int s = s_begin; s < s_end; ++s) {
    acc += loads[static_cast<std::size_t>(s)];
  }
  return acc;
}

TEST(HierBalancer, IntraNodeSkewNeverCrossesNodes) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto start = pipeline::StageMap::uniform(64, 16);
  balance::DiffusionRequest req;
  req.weights = intra_node_skew(64, 32);

  const HierarchicalBalancer hier(topo);
  const auto res = hier.balance(req, start);

  EXPECT_LT(res.imbalance_after, res.imbalance_before);
  EXPECT_EQ(res.inter_node_moves, 0);
  EXPECT_FALSE(res.used_inter_node);
  EXPECT_GT(res.intra_node_moves, 0);
  EXPECT_TRUE(res.converged);
}

TEST(HierBalancer, NodeLevelSkewEscalatesToInterNode) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto start = pipeline::StageMap::uniform(64, 16);
  balance::DiffusionRequest req;
  req.weights.assign(64, 0.5);
  for (std::size_t l = 0; l < 32; ++l) req.weights[l] = 2.0;

  const HierarchicalBalancer hier(topo);
  const auto res = hier.balance(req, start);

  EXPECT_TRUE(res.used_inter_node);
  EXPECT_GT(res.inter_node_moves, 0);
  EXPECT_LT(res.imbalance_after, 0.5 * res.imbalance_before);
  // Node totals end near 50/50.
  const double node0 = stage_range_load(res.map, req.weights, 0, 8);
  const double node1 = stage_range_load(res.map, req.weights, 8, 16);
  EXPECT_NEAR(node0 / (node0 + node1), 0.5, 0.08);
}

TEST(HierBalancer, FewerInterNodeBytesThanFlatDiffusion) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto start = pipeline::StageMap::uniform(64, 16);
  balance::DiffusionRequest req;
  req.weights = intra_node_skew(64, 32);
  std::vector<double> state_bytes(64, 1e9);

  const auto hier_res = HierarchicalBalancer(topo).balance(req, start);
  const auto flat_res = balance::DiffusionBalancer{}.balance(req, start);

  const auto hier_plan =
      balance::plan_migration(start, hier_res.map, state_bytes);
  const auto flat_plan =
      balance::plan_migration(start, flat_res.map, state_bytes);
  const auto hier_split = classify_migration(hier_plan, topo);
  const auto flat_split = classify_migration(flat_plan, topo);

  EXPECT_EQ(hier_split.inter_node_bytes, 0.0);
  EXPECT_LE(hier_split.inter_node_bytes, flat_split.inter_node_bytes);

  // ...at equal-or-better final balance (small tolerance: both end within
  // layer granularity of flat).
  const auto hier_imb = load_imbalance(hier_res.map.stage_loads(req.weights));
  const auto flat_imb = load_imbalance(flat_res.map.stage_loads(req.weights));
  EXPECT_LE(hier_imb, flat_imb + 0.05);
}

TEST(HierBalancer, HeterogeneousNodesLoadProportionalToSpeed) {
  NodeDesc h100;
  h100.gpus.assign(8, hw::GpuSpec::h100_sxm5());
  NodeDesc a100;
  a100.gpus.assign(8, hw::GpuSpec::a100_sxm4());
  const auto topo = Topology::make_hetero(
      {h100, a100}, default_link(LinkType::InfiniBand));

  const auto start = pipeline::StageMap::uniform(96, 16);
  balance::DiffusionRequest req;
  req.weights.assign(96, 1.0);

  const auto res = HierarchicalBalancer(topo).balance(req, start);

  EXPECT_TRUE(res.used_inter_node);
  const double fast = stage_range_load(res.map, req.weights, 0, 8);
  const double slow = stage_range_load(res.map, req.weights, 8, 16);
  // H100 ranks are ~3.4x the achievable GEMM throughput of A100 ranks;
  // the capacity-aware protocol shifts load toward them.
  EXPECT_GT(fast, 2.0 * slow);
  EXPECT_LT(res.imbalance_after, res.imbalance_before);
}

TEST(HierBalancer, RejectsNonContiguousPlacements) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto start = pipeline::StageMap::uniform(64, 16);
  balance::DiffusionRequest req;
  req.weights.assign(64, 1.0);
  const auto rr = place_round_robin(topo, 16);
  EXPECT_THROW(HierarchicalBalancer(topo).balance(req, start,
                                                  rr.stage_to_rank),
               Error);
}

TEST(DiffusionCapacities, EmptyCapacitiesMatchLegacyBehavior) {
  balance::DiffusionRequest plain;
  plain.weights = intra_node_skew(32, 32);
  auto with_caps = plain;
  with_caps.capacities.assign(8, 3.7);  // uniform scale is a no-op

  const auto start = pipeline::StageMap::uniform(32, 8);
  const auto a = balance::DiffusionBalancer{}.balance(plain, start);
  const auto b = balance::DiffusionBalancer{}.balance(with_caps, start);
  EXPECT_EQ(a.map, b.map);
}

TEST(DiffusionCapacities, LoadsConvergeProportionalToCapacity) {
  balance::DiffusionRequest req;
  req.weights.assign(60, 1.0);
  req.capacities = {2.0, 1.0};
  const auto start = pipeline::StageMap::uniform(60, 2);
  const auto res = balance::DiffusionBalancer{}.balance(req, start);
  const auto loads = res.map.stage_loads(req.weights);
  EXPECT_NEAR(loads[0] / loads[1], 2.0, 0.15);
}

TEST(Migration, TopologyPricingChargesTheActualLink) {
  const auto topo = Topology::make_dgx_h100(2);
  const auto net = topo.make_cost_model();
  const auto placement = place_linear(topo, 16);

  balance::MigrationPlan intra;
  intra.transfers.push_back({0, 0, 7, 1e9});  // stays on node 0
  balance::MigrationPlan inter;
  inter.transfers.push_back({0, 0, 8, 1e9});  // crosses to node 1

  const double t_intra =
      intra.estimated_time_s(net, placement.stage_to_rank);
  const double t_inter =
      inter.estimated_time_s(net, placement.stage_to_rank);
  // NVLink vs InfiniBand: ~18x bandwidth gap on the same payload.
  EXPECT_GT(t_inter, 10.0 * t_intra);
  // And the explicit-rank overload agrees with the identity default.
  EXPECT_DOUBLE_EQ(t_intra, intra.estimated_time_s(net));
}

TEST(Migration, ClassifySplitsByNodeBoundary) {
  const auto topo = Topology::make_dgx_h100(2);
  balance::MigrationPlan plan;
  plan.transfers.push_back({0, 0, 3, 100.0});
  plan.transfers.push_back({1, 2, 12, 40.0});
  plan.transfers.push_back({2, 9, 15, 60.0});
  const auto split = classify_migration(plan, topo);
  EXPECT_DOUBLE_EQ(split.intra_node_bytes, 160.0);
  EXPECT_DOUBLE_EQ(split.inter_node_bytes, 40.0);
  EXPECT_DOUBLE_EQ(split.total_bytes(), 200.0);
}

}  // namespace
}  // namespace dynmo::cluster
