// Unit tests for pipeline::StageMap.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo::pipeline {
namespace {

TEST(StageMap, UniformSplitsEvenly) {
  const auto m = StageMap::uniform(24, 8);
  EXPECT_EQ(m.num_stages(), 8);
  EXPECT_EQ(m.num_layers(), 24u);
  for (int s = 0; s < 8; ++s) EXPECT_EQ(m.stage_size(s), 3u);
}

TEST(StageMap, UniformDistributesRemainder) {
  const auto m = StageMap::uniform(10, 4);
  // 3,3,2,2 — remainders go to the earliest stages.
  EXPECT_EQ(m.stage_size(0), 3u);
  EXPECT_EQ(m.stage_size(1), 3u);
  EXPECT_EQ(m.stage_size(2), 2u);
  EXPECT_EQ(m.stage_size(3), 2u);
}

TEST(StageMap, UniformMoreStagesThanLayers) {
  const auto m = StageMap::uniform(3, 5);
  EXPECT_EQ(m.active_stages(), 3);
  EXPECT_EQ(m.num_layers(), 3u);
}

TEST(StageMap, FromBoundariesValidates) {
  EXPECT_NO_THROW(StageMap::from_boundaries({0, 2, 2, 5}));
  EXPECT_THROW(StageMap::from_boundaries({1, 2}), Error);   // must start at 0
  EXPECT_THROW(StageMap::from_boundaries({0, 3, 2}), Error);  // not sorted
  EXPECT_THROW(StageMap::from_boundaries({0}), Error);      // no stage
}

TEST(StageMap, StageOfMapsBoundaries) {
  const auto m = StageMap::from_boundaries({0, 2, 2, 5});
  EXPECT_EQ(m.stage_of(0), 0);
  EXPECT_EQ(m.stage_of(1), 0);
  EXPECT_EQ(m.stage_of(2), 2);  // stage 1 is empty
  EXPECT_EQ(m.stage_of(4), 2);
  EXPECT_THROW((void)m.stage_of(5), Error);
  EXPECT_TRUE(m.stage_empty(1));
  EXPECT_EQ(m.active_stages(), 2);
}

TEST(StageMap, StageLoadsSum) {
  const auto m = StageMap::from_boundaries({0, 1, 3});
  const std::vector<double> w = {1.0, 2.0, 4.0};
  const auto loads = m.stage_loads(w);
  EXPECT_DOUBLE_EQ(loads[0], 1.0);
  EXPECT_DOUBLE_EQ(loads[1], 6.0);
  EXPECT_THROW((void)m.stage_loads(std::vector<double>{1.0}), Error);
}

TEST(StageMap, GreedyByWeightBalances) {
  // One huge layer followed by many small: greedy must not lump them all.
  std::vector<double> w = {10.0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  const auto m = StageMap::greedy_by_weight(w, 3);
  EXPECT_EQ(m.num_stages(), 3);
  EXPECT_EQ(m.num_layers(), w.size());
  const auto loads = m.stage_loads(w);
  // The heavy layer should sit alone-ish; every stage nonempty.
  for (int s = 0; s < 3; ++s) EXPECT_GT(m.stage_size(s), 0u);
  EXPECT_LE(loads[0], 11.0);
}

TEST(StageMap, GreedyByWeightCoversAllLayers) {
  for (int stages : {1, 2, 3, 5, 8}) {
    std::vector<double> w(17, 1.0);
    const auto m = StageMap::greedy_by_weight(w, stages);
    EXPECT_EQ(m.num_layers(), 17u);
    EXPECT_EQ(m.num_stages(), stages);
  }
}

TEST(StageMap, EqualityAndToString) {
  const auto a = StageMap::uniform(6, 2);
  const auto b = StageMap::from_boundaries({0, 3, 6});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_string(), "[0..3 | 3..6]");
}

}  // namespace
}  // namespace dynmo::pipeline
