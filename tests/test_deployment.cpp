// Tests for cluster::Deployment — the one object every cost surface
// consumes — and for the surfaces it feeds: hierarchical collective
// pricing, deployment-aware re-packing, and the session-level
// HierarchicalDiffusion mode.
#include <gtest/gtest.h>

#include <numeric>

#include "core/error.hpp"
#include "dynmo/dynmo.hpp"
#include "repack/repack.hpp"

namespace dynmo {
namespace {

cluster::Deployment two_dgx_h100(int num_stages = 16) {
  return cluster::Deployment::make_topology_aware(
      cluster::Topology::make_dgx_h100(2), num_stages);
}

cluster::Deployment hetero_pod(int num_stages = 16) {
  cluster::NodeDesc h100;
  h100.gpus.assign(8, hw::GpuSpec::h100_sxm5());
  cluster::NodeDesc a100;
  a100.gpus.assign(8, hw::GpuSpec::a100_sxm4());
  a100.intra = cluster::LinkSpec{cluster::LinkType::NvLink, 250e9, 2.5e-6};
  return cluster::Deployment::make_topology_aware(
      cluster::Topology::make_hetero(
          {h100, a100}, cluster::default_link(cluster::LinkType::InfiniBand)),
      num_stages);
}

TEST(Deployment, FactoriesAndAccessors) {
  const auto dep = two_dgx_h100();
  EXPECT_EQ(dep.num_stages(), 16);
  EXPECT_EQ(dep.topology().num_ranks(), 16);
  // Topology-aware placement on a homogeneous pod keeps node runs
  // contiguous: stages 0..7 on one node, 8..15 on the other.
  for (int s = 1; s < 8; ++s) EXPECT_EQ(dep.node(s), dep.node(0));
  for (int s = 9; s < 16; ++s) EXPECT_EQ(dep.node(s), dep.node(8));
  EXPECT_NE(dep.node(0), dep.node(8));
  EXPECT_EQ(dep.gpu(0).name, "H100-SXM5-80GB");
  EXPECT_FALSE(dep.heterogeneous());
  EXPECT_DOUBLE_EQ(dep.min_mem_capacity(), hw::GpuSpec::h100_sxm5().mem_capacity);

  const auto linear =
      cluster::Deployment::make_linear(cluster::Topology::make_dgx_h100(2), 4);
  EXPECT_EQ(linear.rank(3), 3);
}

TEST(Deployment, MakeValidatesPlacement) {
  auto topo = cluster::Topology::make_dgx_h100(1);
  EXPECT_THROW((void)cluster::Deployment::make(topo, {0, 1, 99}), Error);
  EXPECT_THROW((void)cluster::Deployment::make(topo, {0, 1, 1}), Error);
  EXPECT_THROW((void)cluster::Deployment::make(topo, {}), Error);
  EXPECT_THROW((void)cluster::Deployment::make_topology_aware(topo, 9), Error);
}

TEST(Deployment, LinkReflectsTheActualFabric) {
  const auto dep = two_dgx_h100();
  const auto nv = dep.link(0, 1);    // same node: NVLink clique
  const auto ib = dep.link(7, 8);    // node boundary: InfiniBand rail+hops
  EXPECT_GT(nv.beta_bytes_s, 10.0 * ib.beta_bytes_s);
  EXPECT_LT(nv.alpha_s, ib.alpha_s);
  // A stage to itself is free.
  const auto self = dep.link(3, 3);
  EXPECT_EQ(self.alpha_s, 0.0);
}

TEST(Deployment, GroupIsNodeGrouped) {
  const auto dep = two_dgx_h100();
  const auto g = dep.stage_group();
  ASSERT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.max_node_size(), 8);
  EXPECT_EQ(g.total_ranks(), 16);
  // Links come from the topology, not the tier table.
  EXPECT_DOUBLE_EQ(g.intra.beta_bytes_s, 450e9);
  EXPECT_LT(g.inter.beta_bytes_s, 30e9);
}

TEST(Deployment, StageCapacitiesTrackGpuThroughput) {
  const auto hetero = hetero_pod();
  EXPECT_TRUE(hetero.heterogeneous());
  const auto cap = hetero.stage_capacities();
  // The topology-aware placement starts on the H100 node; A100 stages get
  // proportionally lower capacity.
  EXPECT_DOUBLE_EQ(cap[0], 1.0);
  const double a100_ratio =
      (312.0 * 0.58) / (989.0 * 0.62);  // peak * gemm_efficiency
  EXPECT_NEAR(cap[15], a100_ratio, 1e-9);
}

TEST(Deployment, CostModelMembershipIgnoresGpusPerNode) {
  // The config's uniform node-size guess disagrees with the topology (4 vs
  // 8); the deployment-backed model must believe the topology.
  const auto dep = two_dgx_h100();
  comm::CostModelConfig base;
  base.gpus_per_node = 4;
  const auto net = dep.make_cost_model(base);
  EXPECT_TRUE(net.has_node_resolver());
  EXPECT_EQ(net.node_of(7), 0);
  EXPECT_EQ(net.node_of(8), 1);
  EXPECT_EQ(net.tier(4, 7), comm::LinkTier::NvLink);  // flat rule says IB
  const auto g = net.group(std::vector<int>{0, 4, 7, 8, 12});
  ASSERT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.node_sizes[0], 3);
  EXPECT_EQ(g.node_sizes[1], 2);
}

TEST(Deployment, SessionConsumesExplicitDeployment) {
  const auto m = model::make_gpt({.num_blocks = 32,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt;
  opt.session.pipeline_stages = 16;
  opt.session.num_microbatches = 16;
  opt.session.iterations = 100;
  opt.session.sim_stride = 20;
  opt.session.rebalance_interval = 20;
  opt.session.deployment = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_dgx_h100(2), 16);
  Session s(m, UseCase::EarlyExit, opt);
  EXPECT_GT(s.run().tokens_per_sec, 0.0);
}

TEST(Deployment, SessionRejectsMismatchedDeployment) {
  const auto m = model::make_gpt({.num_blocks = 32,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.deployment = two_dgx_h100(16);  // 16 stages != 8
  EXPECT_THROW((void)Session(m, UseCase::Static, opt).run(), Error);
}

TEST(RepackDeployment, ContiguousSnapsToNodeBoundary) {
  // 3 nodes x 4 GPUs, 12 workers; memory fits into 6 workers, but 6 leaves
  // node 1 half-occupied — the node-aware packer keeps 8 so the release is
  // exactly one whole node.
  const auto dep = cluster::Deployment::make_linear(
      cluster::Topology::make_homogeneous(
          3, 4, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      12);
  repack::ContiguousRepackRequest req;
  req.memory_bytes = std::vector<double>(12, 10.0);  // 120 total
  req.mem_capacity = 20.0;
  req.fill_fraction = 1.0;

  const auto plain = repack::repack_contiguous(req, 12);
  EXPECT_EQ(plain.active_workers, 6);

  const auto aware = repack::repack_contiguous(req, 12, dep);
  EXPECT_TRUE(aware.feasible);
  EXPECT_EQ(aware.active_workers, 8);
  EXPECT_EQ(aware.whole_nodes_freed, 1);
  // Survivor map is still memory-feasible.
  const auto mem = aware.map.stage_loads(req.memory_bytes);
  for (int s = 0; s < 8; ++s) {
    EXPECT_LE(mem[static_cast<std::size_t>(s)], req.mem_capacity + 1e-9);
  }
}

TEST(RepackDeployment, ContiguousHonorsExplicitTargetExactly) {
  // Forced Fig-4 sweeps pin the worker count; the node-aware packer must
  // deliver it verbatim, never snap it to a node boundary.
  const auto dep = cluster::Deployment::make_linear(
      cluster::Topology::make_homogeneous(
          3, 4, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      12);
  repack::ContiguousRepackRequest req;
  req.memory_bytes = std::vector<double>(12, 10.0);
  req.mem_capacity = 30.0;
  req.fill_fraction = 1.0;
  req.target_workers = 5;  // mid-node on purpose
  const auto res = repack::repack_contiguous(req, 12, dep);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.active_workers, 5);
  EXPECT_EQ(res.whole_nodes_freed, 1);  // node 2 (workers 8..11)
}

TEST(RepackDeployment, ContiguousKeepsPartialReleaseWhenNoNodeFrees) {
  // 2 nodes x 4: packing to 5 frees 3 GPUs of node 1 but no whole node;
  // snapping up would free nothing, so the memory-minimal pack is kept.
  const auto dep = cluster::Deployment::make_linear(
      cluster::Topology::make_homogeneous(
          2, 4, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      8);
  repack::ContiguousRepackRequest req;
  req.memory_bytes = std::vector<double>(10, 10.0);  // 100 total
  req.mem_capacity = 20.0;
  req.fill_fraction = 1.0;
  const auto aware = repack::repack_contiguous(req, 8, dep);
  EXPECT_EQ(aware.active_workers, 5);
  EXPECT_EQ(aware.whole_nodes_freed, 0);
}

TEST(RepackDeployment, FirstFitVacatesWholeNodes) {
  // 2 nodes x 2 workers; the light node (2, 3) drains into the heavy one.
  const auto dep = cluster::Deployment::make_linear(
      cluster::Topology::make_homogeneous(
          2, 2, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      4);
  const auto res = repack::repack_first_fit({30, 30, 10, 10}, {2, 2, 1, 1},
                                            /*max_mem=*/100, /*target=*/1,
                                            dep);
  EXPECT_EQ(res.nodes_freed, 1);
  EXPECT_FALSE(res.active[2]);
  EXPECT_FALSE(res.active[3]);
  EXPECT_TRUE(res.active[0]);
  EXPECT_TRUE(res.active[1]);
  for (const auto& t : res.transfers) {
    EXPECT_LT(t.dst_worker, 2);  // everything lands on the surviving node
  }
  // Memory conserved and within capacity.
  for (std::size_t w = 0; w < 4; ++w) {
    if (res.active[w]) EXPECT_LT(res.mem_usage[w], 100.0);
  }
}

TEST(RepackDeployment, FirstFitRespectsTargetFloor) {
  const auto dep = cluster::Deployment::make_linear(
      cluster::Topology::make_homogeneous(
          2, 2, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      4);
  // Vacating a node would leave 2 active < floor 3: nothing moves.
  const auto res =
      repack::repack_first_fit({10, 10, 10, 10}, {1, 1, 1, 1}, 100, 3, dep);
  EXPECT_EQ(res.active_workers(), 4);
  EXPECT_EQ(res.nodes_freed, 0);
}

// The acceptance test of the whole API move: the session runs
// HierarchicalDiffusion end-to-end through the dynmo::Session facade, and
// on a multi-node deployment it generates less inter-node migration
// traffic than flat DynMo diffusion at comparable throughput.  8 nodes of
// 2 GPUs put a node boundary between most stage pairs, so topology-blind
// diffusion leaks hundreds of GiB across the fabric chasing MoE routing
// noise; the hierarchical balancer absorbs the same noise with NVLink
// moves and refuses inter-node migrations that do not pay for themselves.
TEST(Deployment, SessionHierarchicalDiffusionReducesInterNodeBytes) {
  const auto m = model::make_moe(model::llama_moe_3_5b_config(), "m");
  Options opt;
  opt.session.pipeline_stages = 16;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 300;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;
  opt.moe.tokens_per_microbatch = 512;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.deployment = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_homogeneous(
          8, 2, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      16);

  const auto run_algo = [&](balance::Algorithm algo) {
    Options o = opt;
    o.session.algorithm = algo;
    Session s(m, UseCase::Moe, o);
    return s.run();
  };
  const auto flat = run_algo(balance::Algorithm::Diffusion);
  const auto hier = run_algo(balance::Algorithm::HierarchicalDiffusion);

  EXPECT_GT(flat.rebalance_count, 0);
  EXPECT_GT(hier.rebalance_count, 0);
  EXPECT_GT(hier.intra_node_migration_bytes, 0.0);
  // Flat diffusion leaks across the fabric; the hierarchy must cut that
  // traffic by at least half (in practice it issues none here).
  EXPECT_GT(flat.inter_node_migration_bytes, 0.0);
  EXPECT_LT(hier.inter_node_migration_bytes,
            0.5 * flat.inter_node_migration_bytes);
  // Comparable end-to-end throughput: the hierarchy is not buying fabric
  // savings with a much slower pipeline.
  EXPECT_GT(hier.tokens_per_sec, 0.9 * flat.tokens_per_sec);
}

// ------------------------------------------------------------ DP×PP grids

cluster::Topology rails_cluster(int nodes, int gpus_per_node) {
  return cluster::Topology::make_homogeneous(
      nodes, gpus_per_node, hw::GpuSpec::h100_sxm5(),
      cluster::default_link(cluster::LinkType::NvLink),
      cluster::default_link(cluster::LinkType::InfiniBand));
}

TEST(GridDeployment, FactoriesAccessorsAndReplicaViews) {
  const auto dep = cluster::Deployment::make_grid_topology_aware(
      rails_cluster(4, 4), /*data_parallel=*/4, /*num_stages=*/4,
      cluster::GridOrientation::DpInner);
  EXPECT_EQ(dep.data_parallel(), 4);
  EXPECT_EQ(dep.num_stages(), 4);
  EXPECT_EQ(static_cast<int>(dep.grid_to_rank().size()), 16);
  // rank(stage) is the dp = 0 view.
  for (int s = 0; s < 4; ++s) EXPECT_EQ(dep.rank(s), dep.rank(0, s));
  // Each replica view is a dp = 1 deployment over the same topology with
  // the replica's slice of the grid.
  for (int d = 0; d < 4; ++d) {
    const auto rep = dep.replica(d);
    EXPECT_EQ(rep.data_parallel(), 1);
    EXPECT_EQ(rep.num_stages(), 4);
    for (int s = 0; s < 4; ++s) EXPECT_EQ(rep.rank(s), dep.rank(d, s));
  }
  // DpInner: a stage's peers share one node; PpInner: they all sit apart.
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(dep.dp_group(s).num_nodes(), 1) << "stage " << s;
  }
  const auto pp_inner = cluster::Deployment::make_grid_topology_aware(
      rails_cluster(4, 4), 4, 4, cluster::GridOrientation::PpInner);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(pp_inner.dp_group(s).num_nodes(), 4) << "stage " << s;
  }
}

TEST(GridDeployment, MakeGridValidatesShapeAndRanks) {
  auto topo = rails_cluster(2, 4);
  // Grid size must divide into replicas.
  EXPECT_THROW((void)cluster::Deployment::make_grid(topo, 3, {0, 1, 2, 3}),
               Error);
  // Ranks distinct across the whole grid, not just within a replica.
  EXPECT_THROW((void)cluster::Deployment::make_grid(topo, 2, {0, 1, 1, 2}),
               Error);
  EXPECT_THROW((void)cluster::Deployment::make_grid(topo, 2, {0, 1, 2, 99}),
               Error);
  EXPECT_THROW((void)cluster::Deployment::make_grid(topo, 0, {0, 1}), Error);
  // A legal explicit grid round-trips.
  const auto dep =
      cluster::Deployment::make_grid(topo, 2, {0, 1, 4, 5});
  EXPECT_EQ(dep.rank(1, 0), 4);
  EXPECT_EQ(dep.dp_group(0).num_nodes(), 2);
}

// Property: when all of a stage's DP peers share one node, the dp_group
// allreduce is *exactly* the flat intra-node ring formula — the
// hierarchical pricing introduces no artificial discount.
TEST(GridDeployment, DpGroupAllreduceEqualsFlatWhenPeersShareOneNode) {
  const auto dep = cluster::Deployment::make_grid_topology_aware(
      rails_cluster(4, 4), 4, 4, cluster::GridOrientation::DpInner);
  const auto net = dep.make_cost_model();
  const std::size_t bytes = 96u << 20;
  for (int s = 0; s < 4; ++s) {
    const auto g = dep.dp_group(s);
    ASSERT_EQ(g.num_nodes(), 1);
    EXPECT_DOUBLE_EQ(net.allreduce_time(g, bytes),
                     net.allreduce_time(4, bytes, /*crosses_nodes=*/false));
  }
}

// Property: whenever any two DP peers share a node, the node-grouped
// pricing is strictly cheaper than the old singleton-node hack (every
// gradient byte charged at the fabric tier).
TEST(GridDeployment, DpGroupBeatsSingletonPricingWheneverPeersShareANode) {
  // 2-GPU nodes, dp = 4: each stage's peers split 2+2 across two nodes.
  const auto dep = cluster::Deployment::make_grid_topology_aware(
      rails_cluster(4, 2), 4, 2, cluster::GridOrientation::DpInner);
  const auto net = dep.make_cost_model();
  const std::size_t bytes = 96u << 20;
  comm::RankGroup singleton;
  singleton.node_sizes.assign(4, 1);
  singleton.intra = net.params(comm::LinkTier::NvLink);
  singleton.inter = net.params(comm::LinkTier::InfiniBand);
  for (int s = 0; s < 2; ++s) {
    const auto g = dep.dp_group(s);
    ASSERT_EQ(g.num_nodes(), 2);
    EXPECT_GT(g.max_node_size(), 1);
    EXPECT_LT(net.allreduce_time(g, bytes),
              net.allreduce_time(singleton, bytes));
  }
}

TEST(GridDeployment, SessionRejectsMismatchedDpWidth) {
  const auto m = model::make_gpt({.num_blocks = 16,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt;
  opt.session.pipeline_stages = 4;
  opt.session.data_parallel = 4;  // grid says 2
  opt.session.deployment = cluster::Deployment::make_grid_topology_aware(
      rails_cluster(2, 4), 2, 4, cluster::GridOrientation::DpInner);
  EXPECT_THROW((void)Session(m, UseCase::Static, opt).run(), Error);
}

// Session-level property: orientation moves the DP allreduce traffic the
// way the topology says it must.  DpInner keeps every gradient byte inside
// a node (zero fabric traffic); PpInner pays the fabric for all of it.
TEST(GridDeployment, OrientationMovesInterNodeDpBytesInTheExpectedDirection) {
  const auto m = model::make_gpt({.num_blocks = 16,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt;
  opt.session.pipeline_stages = 4;
  opt.session.data_parallel = 4;
  opt.session.num_microbatches = 8;
  opt.session.iterations = 50;
  opt.session.sim_stride = 10;

  const auto run_orientation = [&](cluster::GridOrientation o) {
    Options local = opt;
    local.session.deployment = cluster::Deployment::make_grid_topology_aware(
        rails_cluster(4, 4), 4, 4, o);
    Session s(m, UseCase::Static, local);
    return s.run();
  };
  const auto dp_inner = run_orientation(cluster::GridOrientation::DpInner);
  const auto pp_inner = run_orientation(cluster::GridOrientation::PpInner);

  EXPECT_GT(dp_inner.intra_node_dp_bytes, 0.0);
  EXPECT_DOUBLE_EQ(dp_inner.inter_node_dp_bytes, 0.0);
  EXPECT_GT(pp_inner.inter_node_dp_bytes, 0.0);
  EXPECT_LT(dp_inner.inter_node_dp_bytes, pp_inner.inter_node_dp_bytes);
}

// The synthetic (deployment-less) DP path groups replicas by
// net.gpus_per_node instead of all-singleton nodes: when several replica
// pipelines tile into one node, part of the exchange stays intra-node and
// the allreduce gets cheaper, so throughput must not drop.
TEST(GridDeployment, SyntheticDpPathGroupsReplicasByNodeSize) {
  const auto m = model::make_gpt({.num_blocks = 16,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt;
  opt.session.pipeline_stages = 2;
  opt.session.data_parallel = 4;
  opt.session.num_microbatches = 8;
  opt.session.iterations = 50;
  opt.session.sim_stride = 10;

  const auto run_with_node_size = [&](int gpus_per_node) {
    Options local = opt;
    local.session.net.gpus_per_node = gpus_per_node;
    Session s(m, UseCase::Static, local);
    return s.run();
  };
  // 8-GPU nodes: all four 2-stage replicas share one node — no fabric DP
  // traffic at all.  1-GPU nodes: the old singleton regime.
  const auto wide = run_with_node_size(8);
  const auto singleton = run_with_node_size(1);
  EXPECT_GT(wide.intra_node_dp_bytes, 0.0);
  EXPECT_DOUBLE_EQ(wide.inter_node_dp_bytes, 0.0);
  EXPECT_DOUBLE_EQ(singleton.intra_node_dp_bytes, 0.0);
  EXPECT_GT(singleton.inter_node_dp_bytes, 0.0);
  EXPECT_GE(wide.tokens_per_sec, singleton.tokens_per_sec);
}

TEST(GridDeployment, MigrationBytesAreMirroredAcrossReplicas) {
  // The same MoE run on one replica vs. a 2-wide grid whose replica 0 has
  // the identical placement: every layer move is mirrored, so the grid
  // must report about twice the migration traffic (the second replica
  // straddles the same node boundaries by symmetry).
  const auto m = model::make_moe(model::llama_moe_3_5b_config(), "m");
  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.num_microbatches = 16;
  opt.session.iterations = 60;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;
  opt.moe.tokens_per_microbatch = 512;

  const auto topo = [] { return rails_cluster(4, 4); };
  const auto grid = cluster::Deployment::make_grid_topology_aware(
      topo(), 2, 8, cluster::GridOrientation::PpInner);

  Options single_opt = opt;
  single_opt.session.data_parallel = 1;
  single_opt.session.deployment =
      cluster::Deployment::make(topo(), std::vector<int>(
          grid.stage_to_rank(0).begin(), grid.stage_to_rank(0).end()));
  Options grid_opt = opt;
  grid_opt.session.data_parallel = 2;
  grid_opt.session.deployment = grid;

  const auto single = Session(m, UseCase::Moe, single_opt).run();
  const auto doubled = Session(m, UseCase::Moe, grid_opt).run();
  const double single_total = single.intra_node_migration_bytes +
                              single.inter_node_migration_bytes;
  const double grid_total = doubled.intra_node_migration_bytes +
                            doubled.inter_node_migration_bytes;
  EXPECT_GT(single_total, 0.0);
  EXPECT_NEAR(grid_total, 2.0 * single_total, 0.5 * single_total);
}

TEST(Deployment, SessionHierarchicalNeedsDeployment) {
  const auto m = model::make_gpt({.num_blocks = 16,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.algorithm = balance::Algorithm::HierarchicalDiffusion;
  EXPECT_THROW((void)Session(m, UseCase::Static, opt).run(), Error);
}

}  // namespace
}  // namespace dynmo
