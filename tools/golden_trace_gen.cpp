// golden_trace_gen: replay the canonical golden-trace scenarios
// (docs/TRANSPORT.md "Golden-trace gate") with deterministic telemetry.
//
//   golden_trace_gen --scenario session        --out DIR [--decision-path P]
//   golden_trace_gen --scenario large_grid     --out DIR [--decision-path P]
//   golden_trace_gen --scenario threaded_fault --out DIR [--transport T]
//
// `session` is the small modeled session from the telemetry tests (8
// stages, 400 iterations at stride 10, Diffusion rebalancing every frame):
// single-threaded and fully modeled, it pins the trace *format* — every
// row, every column, byte for byte.  `threaded_fault` is the
// heartbeat-detected worker-loss recovery from the fault tests (3 workers,
// loss at iteration 6, checkpoint cadence 4): real threads on a real
// transport, it pins the determinism *contract* — the rows rank 0 emits
// and the recovery checksums must be identical on every backend.  Traces
// are recorded with TelemetryConfig::deterministic, so the measured
// wall-clock columns are zeroed at the source and the remaining content is
// a pure function of the scenario.
//
// `large_grid` is the canonical large deployment for the incremental
// decision path: a 2×32 DP×PP grid on 8 DGX-H100 nodes (64 ranks),
// capacity-aware diffusion every frame.  `--decision-path
// incremental|rescan` selects the cost-surface implementation inside the
// rebalancer (SessionConfig::incremental_decisions); the gate replays the
// scenario under BOTH and byte-compares every telemetry table — the
// session-level proof that the incremental surface changes no decision
// (docs/COST_MODEL.md "Incremental recomputation").
//
// For threaded_fault the tool also runs the fault-free twin of the same
// seed in memory and refuses (exit 2) to emit a golden whose recovery
// checksums disagree with it — a golden that violates the paper's
// bit-identical-recovery claim must never be committed.  The checksums
// land in DIR/checksums.txt for the gate's cross-backend compare.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dynmo/dynmo.hpp"
#include "runtime/threaded.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario session|large_grid|threaded_fault "
               "--out DIR [--transport inproc|socket] "
               "[--decision-path incremental|rescan]\n",
               argv0);
  return 64;
}

void run_session(const std::string& out, bool incremental) {
  using namespace dynmo;
  // Mirrors tests/test_telemetry.cpp traced_options(): change one only in
  // lockstep with the other (and regenerate the golden).
  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.micro_batch = 2;
  opt.session.num_microbatches = 16;
  opt.session.iterations = 400;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.algorithm = balance::Algorithm::Diffusion;
  opt.session.payoff_window_iters = 20.0;
  opt.session.telemetry.dir = out;
  opt.session.telemetry.deterministic = true;
  opt.session.incremental_decisions = incremental;
  Session session(model::make_gpt({.num_blocks = 16,
                                   .include_embedding = false,
                                   .include_lm_head = false}),
                  UseCase::SparseAttention, opt);
  const auto result = session.run();
  std::printf("session: %zu frames traced, tokens/s %.6g\n",
              static_cast<std::size_t>(opt.session.iterations /
                                       opt.session.sim_stride),
              result.tokens_per_sec);
}

void run_large_grid(const std::string& out, bool incremental) {
  using namespace dynmo;
  // Canonical large-grid scenario for the incremental decision path: the
  // golden is generated once (rescan and incremental agree byte-for-byte,
  // gated by check_golden_trace.sh) and replayed under both paths in CI.
  Options opt;
  opt.session.pipeline_stages = 32;
  opt.session.data_parallel = 2;
  opt.session.micro_batch = 2;
  opt.session.num_microbatches = 16;
  opt.session.iterations = 200;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.algorithm = balance::Algorithm::Diffusion;
  opt.session.payoff_window_iters = 20.0;
  opt.session.deployment = cluster::Deployment::make_grid_topology_aware(
      cluster::Topology::make_dgx_h100(8), /*data_parallel=*/2,
      /*num_stages=*/32, cluster::GridOrientation::PpInner);
  opt.session.telemetry.dir = out;
  opt.session.telemetry.deterministic = true;
  opt.session.incremental_decisions = incremental;
  Session session(model::make_gpt({.num_blocks = 64,
                                   .include_embedding = false,
                                   .include_lm_head = false}),
                  UseCase::SparseAttention, opt);
  const auto result = session.run();
  std::printf("large_grid[%s]: %zu frames traced, tokens/s %.6g\n",
              incremental ? "incremental" : "rescan",
              static_cast<std::size_t>(opt.session.iterations /
                                       opt.session.sim_stride),
              result.tokens_per_sec);
}

int run_threaded_fault(const std::string& out, dynmo::comm::TransportKind k) {
  using namespace dynmo;
  // Mirrors tests/test_fault.cpp threaded_fault_config() + the
  // HeartbeatDetectedLossRecoversBitIdentically scenario.
  runtime::ThreadedConfig cfg;
  cfg.workers = 3;
  cfg.num_layers = 6;
  cfg.hidden = 16;
  cfg.batch_rows = 2;
  cfg.microbatches = 4;
  cfg.apply_weight_update = true;
  cfg.seed = 0xfee1;
  cfg.heartbeat_timeout_s = 0.15;
  cfg.transport = k;
  const std::vector<runtime::PlanPhase> plan = {
      {.map = pipeline::StageMap::uniform(6, 3), .iterations = 10}};

  // Fault-free twin first: the reference the recovery must reproduce.
  runtime::ThreadedPipeline clean(cfg);
  const auto ref = clean.run(plan);

  cfg.checkpoint_interval_iters = 4;
  cfg.fault.losses = {{.iter = 6, .worker = 2}};
  cfg.telemetry.dir = out;
  cfg.telemetry.deterministic = true;
  runtime::ThreadedPipeline faulty(cfg);
  const auto rep = faulty.run(plan);

  const bool match = rep.output_checksum == ref.output_checksum &&
                     rep.weight_checksums == ref.weight_checksums;
  const std::string path = out + "/checksums.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "scenario threaded_fault\n");
  std::fprintf(f, "output_checksum %016" PRIx64 "\n", rep.output_checksum);
  for (std::size_t l = 0; l < rep.weight_checksums.size(); ++l) {
    std::fprintf(f, "weight_checksum %zu %016" PRIx64 "\n", l,
                 rep.weight_checksums[l]);
  }
  std::fprintf(f, "worker_losses %d\n", rep.worker_losses);
  std::fprintf(f, "restarts %d\n", rep.restarts);
  std::fprintf(f, "bytes_checkpoint %" PRIu64 "\n", rep.bytes_checkpoint);
  std::fprintf(f, "fault_free_match %d\n", match ? 1 : 0);
  std::fclose(f);

  if (!match) {
    std::fprintf(stderr,
                 "FATAL: recovery checksums diverge from the fault-free "
                 "twin — refusing to emit a golden that breaks the "
                 "bit-identical-recovery contract\n");
    return 2;
  }
  std::printf("threaded_fault[%s]: %d losses recovered, output %016" PRIx64
              " (matches fault-free twin)\n",
              comm::to_string(k), rep.worker_losses, rep.output_checksum);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario, out;
  auto kind = dynmo::comm::TransportKind::InProc;
  bool incremental = true;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(64);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scenario") == 0) {
      scenario = need("--scenario");
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = need("--out");
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      kind = dynmo::comm::parse_transport(need("--transport"));
    } else if (std::strcmp(argv[i], "--decision-path") == 0) {
      const std::string p = need("--decision-path");
      if (p == "incremental") {
        incremental = true;
      } else if (p == "rescan") {
        incremental = false;
      } else {
        std::fprintf(stderr, "unknown decision path '%s'\n", p.c_str());
        return 64;
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (scenario.empty() || out.empty()) return usage(argv[0]);

  try {
    if (scenario == "session") {
      run_session(out, incremental);
      return 0;
    }
    if (scenario == "large_grid") {
      run_large_grid(out, incremental);
      return 0;
    }
    if (scenario == "threaded_fault") {
      return run_threaded_fault(out, kind);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
  return usage(argv[0]);
}
