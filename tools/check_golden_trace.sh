#!/usr/bin/env bash
# Golden-trace CI gate (docs/TRANSPORT.md "Golden-trace gate").
#
# Replays the canonical deterministic scenarios with golden_trace_gen and
# byte-compares every telemetry table against the committed goldens in
# tests/golden/:
#
#   session         -- modeled 8-stage session; pins the trace format.
#                      Transport-independent (no comm::World behind it).
#                      Replayed with the incremental decision path forced
#                      ON and OFF -- both must match the one golden.
#   large_grid      -- 2x32 DP*PP grid on 8 DGX-H100 nodes, diffusion
#                      every frame; the canonical scenario for the
#                      incremental cost surfaces.  Also replayed under
#                      both decision paths: identical bytes here are the
#                      session-level proof that incremental caching
#                      changes no decision (docs/COST_MODEL.md
#                      "Incremental recomputation").
#   threaded_fault  -- heartbeat-detected worker-loss recovery; replayed on
#                      BOTH transport backends.  The same bytes must come
#                      out of inproc and socket: this is the proof that the
#                      transport never leaks into the math (checksums.txt)
#                      or the telemetry (JSONL tables).
#
# Every .jsonl table and checksums.txt must match byte-for-byte.  The
# catalog.json is compared modulo its two machine-dependent metadata lines
# ("transport", "machine") -- trace_writer emits each on its own line for
# exactly this reason.  Any other drift fails the gate with exit 1.
#
# Usage: tools/check_golden_trace.sh [BUILD_DIR]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
GEN="$BUILD/golden_trace_gen"
GOLD="$ROOT/tests/golden"

if [ ! -x "$GEN" ]; then
    echo "error: $GEN not built (cmake --build $BUILD --target golden_trace_gen)" >&2
    exit 2
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
fail=0

# catalog.json minus the per-machine / per-backend metadata lines.
strip_catalog() {
    grep -vE '^    "(transport|machine)": ' "$1"
}

# compare_dir GOLDEN_DIR REPLAY_DIR LABEL
compare_dir() {
    local gold="$1" replay="$2" label="$3" base
    # Same file set on both sides: a table appearing or vanishing is drift
    # just as much as a row changing.
    if ! diff <(cd "$gold" && ls) <(cd "$replay" && ls) >/dev/null; then
        echo "DRIFT[$label]: file set differs from golden:"
        diff <(cd "$gold" && ls) <(cd "$replay" && ls) | sed 's/^/    /'
        fail=1
    fi
    for f in "$gold"/*; do
        base="$(basename "$f")"
        [ -f "$replay/$base" ] || continue
        if [ "$base" = catalog.json ]; then
            if ! diff <(strip_catalog "$f") <(strip_catalog "$replay/$base") >/dev/null; then
                echo "DRIFT[$label]: catalog.json differs beyond transport/machine:"
                diff <(strip_catalog "$f") <(strip_catalog "$replay/$base") | head -8 | sed 's/^/    /'
                fail=1
            fi
        elif ! cmp -s "$f" "$replay/$base"; then
            echo "DRIFT[$label]: $base differs from golden:"
            diff "$f" "$replay/$base" | head -6 | sed 's/^/    /'
            fail=1
        fi
    done
}

# Both decision paths must reproduce the same committed golden: the
# incremental cost surface may change no decision, bottleneck, priced
# cost, or telemetry byte relative to the full-rescan reference.
for s in session large_grid; do
    for p in incremental rescan; do
        mkdir "$TMP/${s}_$p"
        "$GEN" --scenario "$s" --out "$TMP/${s}_$p" --decision-path "$p" >/dev/null
        compare_dir "$GOLD/$s" "$TMP/${s}_$p" "$s/$p"
    done
done

for t in inproc socket; do
    mkdir "$TMP/fault_$t"
    # golden_trace_gen itself exits 2 if the recovery checksums diverge
    # from the fault-free twin, so a passing replay already proves the
    # bit-identical-recovery contract on this backend.
    "$GEN" --scenario threaded_fault --out "$TMP/fault_$t" --transport "$t" >/dev/null
    compare_dir "$GOLD/threaded_fault" "$TMP/fault_$t" "threaded_fault/$t"
done

if [ "$fail" -ne 0 ]; then
    echo "golden-trace gate: DRIFT (see above; if intentional, regenerate" \
         "tests/golden/ with golden_trace_gen and commit)"
    exit 1
fi
echo "golden-trace gate: OK (session + large_grid on both decision paths," \
     "threaded_fault on inproc and socket)"
