#!/usr/bin/env python3
"""Query and validate DynMo telemetry traces (docs/TELEMETRY.md).

A trace directory holds catalog.json plus one JSONL file per table; the
catalog declares every table's columns, types, and units, so this tool
never hard-codes a schema — discovery first, reading second.

Usage:
  query_trace.py TRACE_DIR                        # catalog summary
  query_trace.py TRACE_DIR --validate             # full consistency check
  query_trace.py TRACE_DIR TABLE                  # dump rows (TSV)
  query_trace.py TRACE_DIR TABLE -c iter,load_s   # column selection
  query_trace.py TRACE_DIR TABLE -w 'stage=3' -w 'load_s>0.1'
  query_trace.py TRACE_DIR TABLE --json           # JSONL output

Fleet traces (producer "fleet", docs/FLEET.md) add the fleet_decisions
table — every arbiter verdict with its payoff pricing:
  query_trace.py TRACE_DIR fleet_decisions -w 'kind=preempt'

Fault-enabled runs (docs/FAULT.md) add the fault_events table — losses
with their stall breakdown, straggler onsets/recoveries:
  query_trace.py TRACE_DIR fault_events -w 'kind=worker_loss'
--validate additionally checks each worker_loss row's stall identity
(stall_s = alpha_s + bootstrap_s + ckpt_write_s + ckpt_read_s +
lost_work_s).  Tables declaring column types this tool does not know are
skipped with a note instead of failing, so traces from newer producers
stay queryable (forward compatibility).
"""

import argparse
import json
import os
import re
import sys

SCHEMA_VERSION = 1
TRACE_FORMAT = "dynmo-trace"

# JSON value shapes allowed per declared column type.
_TYPE_CHECKS = {
    "int64": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float64": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
    "string": lambda v: isinstance(v, str),
    "list<float64>": lambda v: isinstance(v, list)
    and all(isinstance(x, (int, float)) and not isinstance(x, bool)
            for x in v),
}

_WHERE_RE = re.compile(r"^(\w+)\s*(==|=|!=|>=|<=|>|<)\s*(.+)$")
_OPS = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
}


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(1)


def load_catalog(trace_dir):
    path = os.path.join(trace_dir, "catalog.json")
    if not os.path.isfile(path):
        fail(f"{path} not found (not a trace directory?)")
    with open(path, encoding="utf-8") as f:
        catalog = json.load(f)
    if catalog.get("format") != TRACE_FORMAT:
        fail(f"not a dynmo trace (format {catalog.get('format')!r})")
    if catalog.get("schema_version") != SCHEMA_VERSION:
        fail(f"trace schema version {catalog.get('schema_version')} != "
             f"tool version {SCHEMA_VERSION}")
    return catalog


def iter_rows(trace_dir, table):
    path = os.path.join(trace_dir, table["file"])
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield lineno, json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{table['name']}:{lineno}: unparseable row: {e}")


def _check_fault_event(row):
    """Semantic check for one fault_events row; returns a problem or None."""
    if row.get("kind") == "worker_loss":
        parts = (row.get("alpha_s", 0) + row.get("bootstrap_s", 0) +
                 row.get("ckpt_write_s", 0) + row.get("ckpt_read_s", 0) +
                 row.get("lost_work_s", 0))
        if abs(row.get("stall_s", 0) - parts) > 1e-9 * max(1.0, parts):
            return (f"stall_s {row.get('stall_s')} != breakdown sum "
                    f"{parts} (docs/FAULT.md ledger rule)")
    elif row.get("kind") in ("straggler_onset", "straggler_recovery"):
        if row.get("workers_before") != row.get("workers_after"):
            return "straggler event changed the worker count"
    return None


_SEMANTIC_CHECKS = {"fault_events": _check_fault_event}


def validate(trace_dir, catalog):
    """Cross-check every declared table against its file; exit 1 on drift."""
    problems = []
    run = catalog.get("run")
    if not isinstance(run, dict):
        problems.append("catalog has no 'run' object")
    for table in catalog.get("tables", []):
        name = table.get("name", "?")
        path = os.path.join(trace_dir, table.get("file", ""))
        if not os.path.isfile(path):
            problems.append(f"{name}: declared file {table.get('file')} "
                            "missing")
            continue
        columns = table.get("columns", [])
        if not columns:
            problems.append(f"{name}: catalog declares no columns")
            continue
        expected = {c["name"]: c["type"] for c in columns}
        # Forward compatibility: a newer producer may declare column types
        # this tool does not know.  That is the producer speaking a newer
        # dialect, not trace corruption — note it and skip the table.
        unknown = sorted({t for t in expected.values()
                          if t not in _TYPE_CHECKS})
        if unknown:
            print(f"SKIP {name}: unknown column types {unknown} "
                  "(newer producer?)")
            continue
        semantic = _SEMANTIC_CHECKS.get(name)
        count = 0
        for lineno, row in iter_rows(trace_dir, table):
            count += 1
            if row.get("_v") != SCHEMA_VERSION:
                problems.append(f"{name}:{lineno}: row _v {row.get('_v')} "
                                f"!= {SCHEMA_VERSION}")
                continue
            keys = [k for k in row if k != "_v"]
            if set(keys) != set(expected):
                missing = sorted(set(expected) - set(keys))
                extra = sorted(set(keys) - set(expected))
                problems.append(f"{name}:{lineno}: columns drifted "
                                f"(missing {missing}, extra {extra})")
                continue
            for col, typ in expected.items():
                if not _TYPE_CHECKS[typ](row[col]):
                    problems.append(f"{name}:{lineno}: column {col} is not "
                                    f"a {typ}: {row[col]!r}")
            if semantic is not None:
                issue = semantic(row)
                if issue:
                    problems.append(f"{name}:{lineno}: {issue}")
        if count != table.get("rows"):
            problems.append(f"{name}: catalog declares {table.get('rows')} "
                            f"rows, file has {count}")
    if problems:
        for p in problems[:20]:
            print(f"FAIL {p}", file=sys.stderr)
        if len(problems) > 20:
            print(f"... and {len(problems) - 20} more", file=sys.stderr)
        sys.exit(1)
    total = sum(t.get("rows", 0) for t in catalog.get("tables", []))
    print(f"OK: {len(catalog.get('tables', []))} tables, {total} rows, "
          f"schema v{SCHEMA_VERSION}, producer "
          f"{catalog.get('run', {}).get('producer', '?')}")


def parse_where(expr):
    m = _WHERE_RE.match(expr)
    if not m:
        fail(f"bad --where expression {expr!r} (want col<op>value)")
    col, op, raw = m.group(1), m.group(2), m.group(3).strip()
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw  # bare string, e.g. -w trigger=periodic
    return col, _OPS[op], value


def summarize(catalog):
    run = catalog.get("run", {})
    # transport is empty for modeled producers (no comm::World behind them)
    # and absent entirely in pre-transport-split traces.
    transport = run.get("transport") or "n/a"
    print(f"format {catalog['format']} v{catalog['schema_version']}, "
          f"producer {run.get('producer', '?')}, "
          f"transport {transport}, "
          f"mode {run.get('mode', '?')}, "
          f"{run.get('pipeline_stages', '?')} stages x "
          f"dp {run.get('data_parallel', '?')}, "
          f"{run.get('iterations', '?')} iterations")
    for table in catalog.get("tables", []):
        cols = ", ".join(
            f"{c['name']}:{c['type']}" for c in table.get("columns", []))
        print(f"\n{table['name']} ({table['rows']} rows, {table['file']})")
        print(f"  {table.get('description', '')}")
        print(f"  columns: {cols}")


def dump(trace_dir, catalog, args):
    table = next((t for t in catalog.get("tables", [])
                  if t["name"] == args.table), None)
    if table is None:
        names = ", ".join(t["name"] for t in catalog.get("tables", []))
        fail(f"unknown table {args.table!r} (have: {names})")
    declared = [c["name"] for c in table.get("columns", [])]
    columns = declared
    if args.columns:
        columns = [c.strip() for c in args.columns.split(",")]
        for c in columns:
            if c not in declared:
                fail(f"unknown column {c!r} (have: {', '.join(declared)})")
    filters = [parse_where(w) for w in args.where]

    if not args.json:
        print("\t".join(columns))
    emitted = 0
    for _, row in iter_rows(trace_dir, table):
        if any(col not in row or not op(row[col], value)
               for col, op, value in filters):
            continue
        if args.json:
            print(json.dumps({c: row[c] for c in columns}))
        else:
            print("\t".join(json.dumps(row[c]) if isinstance(row[c], list)
                            else str(row[c]) for c in columns))
        emitted += 1
        if args.limit and emitted >= args.limit:
            break


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace_dir", help="trace directory (holds catalog.json)")
    ap.add_argument("table", nargs="?",
                    help="table to dump; omit for a catalog summary")
    ap.add_argument("-c", "--columns",
                    help="comma-separated column selection")
    ap.add_argument("-w", "--where", action="append", default=[],
                    metavar="EXPR",
                    help="row filter, e.g. 'stage=3' or 'load_s>0.1' "
                         "(repeatable, ANDed)")
    ap.add_argument("-n", "--limit", type=int, default=0,
                    help="stop after N rows")
    ap.add_argument("--json", action="store_true",
                    help="emit JSONL instead of TSV")
    ap.add_argument("--validate", action="store_true",
                    help="check every declared table: files present, rows "
                         "parse, _v and column types match, counts agree")
    args = ap.parse_args()

    catalog = load_catalog(args.trace_dir)
    if args.validate:
        validate(args.trace_dir, catalog)
    elif args.table:
        dump(args.trace_dir, catalog, args)
    else:
        summarize(catalog)


if __name__ == "__main__":
    main()
