#!/usr/bin/env bash
# Docs hygiene check (run by CI):
#   1. every docs/*.md is referenced from README.md — the docs tree stays
#      discoverable from the front page;
#   2. every relative markdown link in README.md and docs/*.md resolves to
#      an existing file (links are resolved relative to the file that
#      contains them; http(s) URLs and pure #anchors are skipped).
# Exits non-zero listing every violation.
set -euo pipefail
cd "$(dirname "$0")/.."
fail=0

for f in docs/*.md; do
  if ! grep -qF "$f" README.md; then
    echo "docs file not referenced from README.md: $f"
    fail=1
  fi
done

for src in README.md docs/*.md; do
  dir=$(dirname "$src")
  while IFS= read -r link; do
    [ -n "$link" ] || continue
    case "$link" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    target=${link%%#*}
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ]; then
      echo "dead link in $src: ($link)"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$src" | sed -E 's/^\]\(//; s/\)$//')
done

exit $fail
