#!/usr/bin/env bash
# Docs hygiene check (run by CI):
#   1. every docs/*.md is referenced from README.md — the docs tree stays
#      discoverable from the front page;
#   2. every relative markdown link in README.md and docs/*.md resolves to
#      an existing file (links are resolved relative to the file that
#      contains them; http(s) URLs are skipped);
#   3. every #anchor — in a cross-page link (docs/X.md#section) or a pure
#      intra-page link (#section) — matches a heading of the target file,
#      using GitHub's slug rule (lowercase, punctuation stripped, spaces
#      to dashes).
# Exits non-zero listing every violation.
set -euo pipefail
cd "$(dirname "$0")/.."
fail=0

for f in docs/*.md; do
  if ! grep -qF "$f" README.md; then
    echo "docs file not referenced from README.md: $f"
    fail=1
  fi
done

# GitHub heading slugs of a markdown file, one per line.
anchors_of() {
  grep -E '^#{1,6} ' "$1" \
    | sed -E 's/^#{1,6} +//; s/ +$//' \
    | tr '[:upper:]' '[:lower:]' \
    | sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

for src in README.md docs/*.md; do
  dir=$(dirname "$src")
  while IFS= read -r link; do
    [ -n "$link" ] || continue
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
    esac
    target=${link%%#*}
    anchor=""
    case "$link" in
      *'#'*) anchor=${link#*#} ;;
    esac
    if [ -n "$target" ] && [ ! -e "$dir/$target" ]; then
      echo "dead link in $src: ($link)"
      fail=1
      continue
    fi
    if [ -n "$anchor" ]; then
      # Resolve the anchor against the linked file (or the linking file
      # itself for pure #anchors); only markdown targets carry headings.
      anchor_file=$src
      if [ -n "$target" ]; then
        case "$target" in
          *.md) anchor_file="$dir/$target" ;;
          *) continue ;;
        esac
      fi
      if ! anchors_of "$anchor_file" | grep -qxF "$anchor"; then
        echo "dead anchor in $src: ($link) — no heading '#$anchor' in $anchor_file"
        fail=1
      fi
    fi
  done < <(grep -oE '\]\([^)]+\)' "$src" | sed -E 's/^\]\(//; s/\)$//')
done

exit $fail
